"""Equivalence of the indexed checkpoint-log queries with the seed scans.

The log answers every reactor query from incrementally maintained
indexes (``repro.checkpoint.log``); ``repro.checkpoint.reference`` keeps
the original linear-scan implementations verbatim.  These tests drive
randomized event streams — overlapping sub-range persists, version-ring
eviction, alloc/free churn, transactions, realloc links — through both
and require *identical* results, including list and dict ordering, since
mitigation outcomes depend on visit order.

The Reverter-level tests additionally run whole mitigations under the
production :class:`Reverter` and the :class:`LinearScanReverter` oracle
on identical synthetic pools and compare the final durable images word
for word.

``test_hotpath_perf_regression`` is the wall-clock guard: a mitigation
over a 5k-update log must stay far under the (very generous) ceiling,
which the pre-index quadratic scans could not.
"""

import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import reference
from repro.checkpoint.log import CheckpointLog
from repro.checkpoint.reference import LinearScanReverter
from repro.harness.hotpaths import build_synthetic_state
from repro.instrument.artifacts import load_checkpoint_log, save_checkpoint_log
from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PMPool
from repro.reactor.revert import Reverter

# a deliberately tiny address space so random streams collide: entries
# overlap, rings evict, frees cover probed words
_BASE = 0x200

_op = st.one_of(
    st.tuples(st.just("update"), st.integers(0, 40), st.integers(1, 4),
              st.booleans()),
    st.tuples(st.just("alloc"), st.integers(0, 40), st.integers(1, 4),
              st.booleans()),
    st.tuples(st.just("free"), st.integers(0, 40), st.integers(1, 4),
              st.booleans()),
    st.tuples(st.just("tx"), st.integers(1, 3), st.integers(1, 4),
              st.booleans()),
    st.tuples(st.just("realloc"), st.integers(0, 40), st.integers(0, 40),
              st.booleans()),
)


def _build_log(ops, max_versions=2):
    """Replay one random op stream through the record_* hooks."""
    log = CheckpointLog(max_versions=max_versions)
    tx = 0
    for kind, a, b, flag in ops:
        if kind == "update":
            values = [(a * 7 + i) % 251 for i in range(b)]
            log.record_update(_BASE + a, b, values, tx_id=tx if flag else 0)
        elif kind == "alloc":
            log.record_alloc(_BASE + a, b)
        elif kind == "free":
            log.record_free(_BASE + a, b)
        elif kind == "tx":
            tx += 1
            log.record_tx_begin(tx)
            for i in range(b):
                log.record_update(_BASE + a + i, 1, [i], tx_id=tx)
            log.record_tx_commit(tx)
        else:  # realloc
            log.link_realloc(_BASE + a, _BASE + b)
    return log


def _assert_queries_match(log):
    """Every indexed query equals its linear-scan reference, order included."""
    for addr in range(_BASE - 6, _BASE + 48):
        assert log.entries_overlapping(addr) == reference.entries_overlapping(
            log, addr
        )
        assert log.update_seqs_for_address(
            addr
        ) == reference.update_seqs_for_address(log, addr)
        assert log.expected_word(addr) == reference.expected_word(log, addr)
        assert log.newest_free_covering(addr) == reference.newest_free_covering(
            log, addr
        )
    for seq in range(0, log.max_seq() + 2):
        assert log.events_after(seq) == reference.events_after(log, seq)
        assert log.update_addrs_since(seq) == sorted(
            reference.update_addrs_since(log, seq),
            key=lambda a: log.entries[a].order,
        )
        # the reference visits entries in creation (dict-insertion) order
        # already, so the sort above must be the identity permutation
        assert log.update_addrs_since(seq) == reference.update_addrs_since(
            log, seq
        )
    live = log.live_unfreed_allocs()
    assert live == reference.live_unfreed_allocs(log)
    assert list(live) == list(reference.live_unfreed_allocs(log))


@given(ops=st.lists(_op, max_size=60))
@settings(max_examples=60, deadline=None)
def test_indexed_queries_match_reference(ops):
    _assert_queries_match(_build_log(ops))


@given(ops=st.lists(_op, max_size=60))
@settings(max_examples=30, deadline=None)
def test_rebuild_indexes_restores_equivalence(ops):
    """Wiping the derived indexes and rebuilding loses nothing."""
    log = _build_log(ops)
    log._size_class_addrs = {}
    log._entry_class = {}
    log._event_seqs = []
    log._frees_by_addr = {}
    log._free_addrs = []
    log._live_allocs = {}
    log._max_free_size = 1
    for entry in log.entries.values():
        entry.max_size = 1
    log.rebuild_indexes()
    _assert_queries_match(log)


@given(ops=st.lists(_op, max_size=40))
@settings(max_examples=20, deadline=None)
def test_artifact_round_trip_preserves_queries(tmp_path_factory, ops):
    """Deserialized logs (which bypass record_*) answer identically."""
    log = _build_log(ops)
    path = str(tmp_path_factory.mktemp("ckpt") / "log.json")
    save_checkpoint_log(log, path)
    loaded = load_checkpoint_log(path)
    _assert_queries_match(loaded)
    for addr in range(_BASE - 2, _BASE + 44):
        assert loaded.update_seqs_for_address(
            addr
        ) == log.update_seqs_for_address(addr)


@given(ops=st.lists(_op, max_size=50),
       addr=st.integers(0, 40), size=st.integers(1, 6),
       cut=st.integers(1, 80))
@settings(max_examples=60, deadline=None)
def test_plan_range_before_matches_reference(ops, addr, size, cut):
    """The windowed range reconstruction equals the full-scan one."""
    log = _build_log(ops)
    pool = PMPool(64, name="stub")
    alloc = PMAllocator(pool)
    fast = Reverter(log, pool, alloc, lambda: None)
    slow = LinearScanReverter(log, pool, alloc, lambda: None)
    assert fast._plan_range_before(_BASE + addr, size, cut) == \
        slow._plan_range_before(_BASE + addr, size, cut)


def test_mitigation_pool_state_identical_across_reverters():
    """purge/rollback/bisect leave byte-identical durable pools."""
    for seed in (0, 7):
        for mode in ("purge", "rollback", "bisect"):
            images = []
            for cls in (Reverter, LinearScanReverter):
                state = build_synthetic_state(600, seed=seed)
                reverter = cls(
                    state.log, state.pool, state.allocator, state.reexec()
                )
                result = getattr(reverter, "mitigate_" + mode)(
                    state.make_plan()
                )
                assert result.recovered, (mode, seed, cls.__name__)
                images.append(state.durable_image())
            assert images[0] == images[1], (mode, seed)


def test_rollback_matches_reference_on_synthetic_state():
    """rollback_to_before agrees seq-for-seq with the linear-scan body."""
    fast_state = build_synthetic_state(400, seed=3)
    slow_state = build_synthetic_state(400, seed=3)
    cut = fast_state.victim_seq
    fast = Reverter(
        fast_state.log, fast_state.pool, fast_state.allocator, lambda: None
    )
    slow = LinearScanReverter(
        slow_state.log, slow_state.pool, slow_state.allocator, lambda: None
    )
    assert sorted(fast.rollback_to_before(cut)) == sorted(
        slow.rollback_to_before(cut)
    )
    assert fast_state.durable_image() == slow_state.durable_image()


def test_hotpath_perf_regression():
    """A 5k-update plan + full mitigation stays well under the ceiling.

    The indexed paths finish this in tens of milliseconds; the ceiling is
    ~100x slack for slow CI machines.  The pre-index linear scans took
    roughly a second for mitigation alone and would trip it on any
    machine if reintroduced.
    """
    start = time.perf_counter()
    build_synthetic_state(5_000, seed=0)
    build_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for mode in ("purge", "rollback", "bisect"):
        fresh = build_synthetic_state(5_000, seed=0)
        rv = Reverter(fresh.log, fresh.pool, fresh.allocator, fresh.reexec())
        result = getattr(rv, "mitigate_" + mode)(fresh.make_plan())
        assert result.recovered
    mitigation_seconds = time.perf_counter() - start
    assert mitigation_seconds < 5.0, (
        f"indexed mitigation took {mitigation_seconds:.2f}s on a 5k-update "
        f"log (state build: {build_seconds:.2f}s) — hot-path regression"
    )
