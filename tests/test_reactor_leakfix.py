"""Tests for persistent-memory-leak mitigation (Section 4.7)."""

from repro.checkpoint.log import CheckpointLog
from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PMPool
from repro.reactor.leakfix import find_leaked_objects, mitigate_leak


def _stack():
    pool = PMPool(2048)
    allocator = PMAllocator(pool)
    log = CheckpointLog()
    return pool, allocator, log


def _tracked_alloc(allocator, log, n):
    addr = allocator.zalloc(n)
    log.record_alloc(addr, n)
    return addr


def test_finds_unreachable_unfreed_blocks():
    pool, allocator, log = _stack()
    live = _tracked_alloc(allocator, log, 4)
    leaked = _tracked_alloc(allocator, log, 4)
    recovery_touched = set(range(live, live + 4))
    found = find_leaked_objects(log, allocator, recovery_touched)
    assert found == {leaked: 4}


def test_freed_blocks_not_reported():
    pool, allocator, log = _stack()
    gone = _tracked_alloc(allocator, log, 4)
    allocator.free(gone)
    log.record_free(gone, 4)
    assert find_leaked_objects(log, allocator, set()) == {}


def test_partially_touched_block_is_live():
    pool, allocator, log = _stack()
    block = _tracked_alloc(allocator, log, 8)
    # recovery touched just one word of it: still reachable
    found = find_leaked_objects(log, allocator, {block + 5})
    assert block not in found


def test_protected_blocks_never_reported():
    pool, allocator, log = _stack()
    root = _tracked_alloc(allocator, log, 4)
    found = find_leaked_objects(log, allocator, set(), protect={root})
    assert root not in found


def test_mitigate_frees_confirmed_leaks():
    pool, allocator, log = _stack()
    leaked = _tracked_alloc(allocator, log, 6)
    freed = mitigate_leak(allocator, {leaked: 6}, confirm=True)
    assert freed == 6
    assert not allocator.is_allocated(leaked)


def test_mitigate_without_confirmation_is_noop():
    pool, allocator, log = _stack()
    leaked = _tracked_alloc(allocator, log, 6)
    freed = mitigate_leak(allocator, {leaked: 6}, confirm=False)
    assert freed == 0
    assert allocator.is_allocated(leaked)
