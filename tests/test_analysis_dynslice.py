"""Tests for dynamic dependence recording and dynamic slicing."""

from repro.analysis import analyze_module
from repro.analysis.dynslice import DynamicDependenceRecorder, dynamic_slice
from repro.analysis.slicing import backward_slice
from repro.lang.compiler import compile_module
from repro.lang.interp import Machine


def _run_with_recorder(src, calls, structs=None):
    module = compile_module("d", src, structs=structs or {})
    machine = Machine(module)
    recorder = DynamicDependenceRecorder()
    machine.dep_recorder = recorder
    results = [machine.call(fname, *args) for fname, args in calls]
    return module, machine, recorder, results


def test_records_register_dataflow():
    src = "def f(a):\n    b = a + 1\n    c = b * 2\n    return c\n"
    module, machine, recorder, results = _run_with_recorder(src, [("f", (3,))])
    assert results == [8]
    ret = next(i for i in module.functions["f"].instructions() if i.op == "ret")
    sl = dynamic_slice(recorder, ret.iid)
    ops = {module.instr(i).op for i in sl}
    assert "binop" in ops


def test_memory_flow_links_actual_writer_only():
    src = (
        "def f(which):\n"
        "    p = pm_alloc(2)\n"
        "    q = pm_alloc(2)\n"
        "    p[0] = 1\n"
        "    q[0] = 2\n"
        "    if which:\n"
        "        return p[0]\n"
        "    return q[0]\n"
    )
    module, machine, recorder, _ = _run_with_recorder(src, [("f", (1,))])
    loads = [i for i in module.functions["f"].instructions()
             if i.op == "load" and i.block.startswith("then")]
    assert loads
    sl = dynamic_slice(recorder, loads[0].iid)
    stores = [i for i in module.functions["f"].instructions() if i.op == "store"]
    p_store, q_store = stores[0], stores[1]
    assert p_store.iid in sl
    # the store to q was executed but never read on this path
    assert q_store.iid not in sl


def test_call_return_linkage():
    src = (
        "def helper(x):\n    return x + 1\n"
        "def f(a):\n"
        "    b = helper(a)\n"
        "    return b * 2\n"
    )
    module, machine, recorder, results = _run_with_recorder(src, [("f", (4,))])
    assert results == [10]
    ret_f = next(i for i in module.functions["f"].instructions() if i.op == "ret")
    sl = dynamic_slice(recorder, ret_f.iid)
    helper_add = next(
        i for i in module.functions["helper"].instructions() if i.op == "binop"
    )
    assert helper_add.iid in sl


def test_dynamic_slice_is_subset_of_static_slice(kv_module):
    """Soundness cross-check: dynamic dependences must all be captured by
    the static PDG's backward slice."""
    analysis = analyze_module(kv_module)
    machine = Machine(kv_module)
    recorder = DynamicDependenceRecorder()
    machine.dep_recorder = recorder
    root = machine.call("kv_init")
    for k in range(8):
        machine.call("kv_put", root, k, 50 + k)
    machine.call("kv_delete", root, 3)
    machine.call("kv_get", root, 6)
    get_load = next(
        i for i in kv_module.functions["kv_get"].instructions() if i.op == "load"
    )
    dyn = dynamic_slice(recorder, get_load.iid)
    static = backward_slice(analysis.pdg, get_load.iid)
    assert dyn <= static
    assert len(dyn) < len(static), "dynamic slicing should be strictly tighter"


def test_crash_clears_frame_shadows_only():
    src = (
        "def setv():\n"
        "    p = pm_alloc(1)\n"
        "    set_root(p)\n"
        "    p[0] = 7\n"
        "    persist(p, 1)\n"
        "    return 0\n"
        "def getv():\n"
        "    p = get_root()\n"
        "    return p[0]\n"
    )
    module = compile_module("d", src)
    machine = Machine(module)
    recorder = DynamicDependenceRecorder()
    machine.dep_recorder = recorder
    machine.call("setv")
    machine.crash()
    recorder.crash()
    machine.call("getv")
    load = next(i for i in module.functions["getv"].instructions() if i.op == "load")
    sl = dynamic_slice(recorder, load.iid)
    store = next(i for i in module.functions["setv"].instructions() if i.op == "store")
    # PM provenance survives the crash: the pre-crash store is in the slice
    assert store.iid in sl


def test_recorder_counts(kv_module):
    machine = Machine(kv_module)
    recorder = DynamicDependenceRecorder()
    machine.dep_recorder = recorder
    root = machine.call("kv_init")
    machine.call("kv_put", root, 1, 2)
    assert recorder.instructions_recorded > 20
    assert recorder.edge_count() > 10
