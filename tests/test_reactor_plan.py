"""Tests for reversion-plan computation (slice x trace x log)."""

from repro.analysis import analyze_module
from repro.checkpoint.manager import CheckpointManager
from repro.detector.monitor import Detector
from repro.errors import Trap
from repro.instrument.passes import instrument_module
from repro.instrument.tracer import PMTrace
from repro.lang.compiler import compile_module
from repro.lang.interp import Machine
from repro.reactor.plan import compute_plan, default_policy, distance_policy
from repro.reactor.server import ReactorClient, ReactorServer

#: a program where a bad persisted flag causes a later panic
SRC = '''
def init():
    root = get_root()
    if root == 0:
        root = pm_alloc(sizeof("st"))
        root.st_flag = 0
        root.st_data = 0
        persist(root, sizeof("st"))
        set_root(root)
    return root


def poke(root, v):
    root.st_flag = v
    persist(addr(root.st_flag), 1)
    return v


def set_data(root, v):
    root.st_data = v
    persist(addr(root.st_data), 1)
    return v


def use(root):
    assert_true(root.st_flag == 0, "bad flag")
    return root.st_data


def __driver__():
    root = init()
    poke(root, 0)
    set_data(root, 1)
    use(root)
    return 0
'''

STRUCTS = {"st": ["st_flag", "st_data"]}


def _setup():
    module = compile_module("p", SRC, structs=STRUCTS)
    analysis = analyze_module(module)
    guid_map, _ = instrument_module(module, analysis.pm)
    machine = Machine(module)
    manager = CheckpointManager(machine.pool, machine.allocator, machine.txman)
    manager.attach()
    trace = PMTrace()
    machine.tracer = trace.record
    return module, analysis, guid_map, machine, manager, trace


def test_plan_finds_bad_flag_update():
    module, analysis, guid_map, machine, manager, trace = _setup()
    root = machine.call("init")
    machine.call("set_data", root, 5)
    machine.call("poke", root, 1)  # the bad persisted value
    detector = Detector()
    out = detector.observe(machine, lambda: machine.call("use", root))
    assert not out.ok
    plan = compute_plan(
        analysis, guid_map, trace, manager.log, out.fault.iid
    )
    assert not plan.empty
    flag_addr = root  # st_flag at offset 0
    assert any(c.addr == flag_addr for c in plan.candidates)
    # newest-first ordering: the bad poke is the newest flag update
    flag_cands = [c for c in plan.candidates if c.addr == flag_addr]
    entry = manager.log.entries[flag_addr]
    assert flag_cands[0].seq == entry.latest().seq


def test_plan_empty_when_fault_unrelated_to_pm():
    module, analysis, guid_map, machine, manager, trace = _setup()
    machine.call("init")
    plan = compute_plan(
        analysis, guid_map, PMTrace(), CheckpointLog_empty(), 0
    )
    assert plan.empty


def CheckpointLog_empty():
    from repro.checkpoint.log import CheckpointLog

    return CheckpointLog()


def test_distance_policy_orders_and_caps():
    module, analysis, guid_map, machine, manager, trace = _setup()
    root = machine.call("init")
    machine.call("poke", root, 1)
    detector = Detector()
    out = detector.observe(machine, lambda: machine.call("use", root))
    plan_default = compute_plan(
        analysis, guid_map, trace, manager.log, out.fault.iid,
        policy=default_policy,
    )
    plan_capped = compute_plan(
        analysis, guid_map, trace, manager.log, out.fault.iid,
        policy=distance_policy(max_distance=0),
    )
    assert len(plan_capped.candidates) <= len(plan_default.candidates)
    # seqs unique in both
    for plan in (plan_default, plan_capped):
        seqs = plan.seqs()
        assert len(seqs) == len(set(seqs))


def test_reactor_server_precomputes_analysis():
    module = compile_module("p2", SRC, structs=STRUCTS)
    server = ReactorServer(module)
    assert server.analysis_seconds >= 0
    client = ReactorClient(server)
    machine = Machine(module)
    manager = CheckpointManager(machine.pool, machine.allocator, machine.txman)
    manager.attach()
    trace = PMTrace()
    machine.tracer = trace.record
    analysis = server.analysis
    guid_map, _ = instrument_module(module, analysis.pm)
    root = machine.call("init")
    machine.call("poke", root, 1)
    detector = Detector()
    out = detector.observe(machine, lambda: machine.call("use", root))
    plan = client.request_mitigation_plan(
        guid_map, trace, manager.log, out.fault.iid
    )
    assert not plan.empty
    assert server.requests_served == 1
    assert plan.slicing_seconds >= 0
