"""Tests for the extended command surfaces (incr/touch/cas, exists/llen)."""

import pytest

from repro.systems.memcached import MemcachedAdapter
from repro.systems.redis import RedisAdapter


@pytest.fixture
def mc():
    adapter = MemcachedAdapter()
    adapter.start()
    return adapter


@pytest.fixture
def rd():
    adapter = RedisAdapter()
    adapter.start()
    return adapter


class TestMemcachedCommands:
    def test_incr(self, mc):
        mc.insert(1, 10)
        assert mc.incr(1, 5) == 15
        assert mc.lookup(1) == 15
        assert mc.incr(99, 1) == -1  # missing key

    def test_incr_is_durable(self, mc):
        mc.insert(1, 10)
        mc.incr(1, 7)
        mc.restart()
        mc.recover()
        assert mc.lookup(1) == 17

    def test_touch_updates_expiry_basis(self, mc):
        mc.insert(1, 10)
        assert mc.touch(1, 99_999) == 1
        assert mc.touch(2, 99_999) == 0
        # a touched item survives a later flush_all cut below its time
        mc.flush_all(50_000)
        assert mc.lookup(1) == 10

    def test_cas(self, mc):
        mc.insert(1, 10)
        assert mc.cas(1, 10, 20) == 1
        assert mc.lookup(1) == 20
        assert mc.cas(1, 10, 30) == 0  # stale expectation
        assert mc.lookup(1) == 20
        assert mc.cas(9, 0, 1) == -1  # missing key

    def test_cas_under_concurrency_one_winner(self, mc):
        mc.insert(1, 10)
        results = mc.machine.call_concurrent(
            [
                ("mc_cas", (mc.root, 1, 10, 111)),
                ("mc_cas", (mc.root, 1, 10, 222)),
            ],
            quantum=(1, 3),
        )
        assert sorted(results) in ([0, 1], [1, 1])
        assert mc.lookup(1) in (111, 222)


class TestRedisCommands:
    def test_incr_creates_and_increments(self, rd):
        assert rd.incr(1, 5) == 5   # upsert
        assert rd.incr(1, 3) == 8
        assert rd.lookup(1) == 8

    def test_incr_rejects_listpacks(self, rd):
        rd.lpush(100, 2, 7)
        assert rd.incr(100, 1) == -1

    def test_exists(self, rd):
        assert rd.exists(1) == 0
        rd.insert(1, 11)
        assert rd.exists(1) == 1
        rd.delete(1)
        assert rd.exists(1) == 0

    def test_llen(self, rd):
        assert rd.llen(100) == -1
        rd.lpush(100, 2, 7)
        rd.lpush(100, 3, 8)
        assert rd.llen(100) == 2
        rd.insert(1, 11)
        assert rd.llen(1) == -1  # not a listpack

    def test_incr_durable(self, rd):
        rd.incr(1, 41)
        rd.incr(1, 1)
        rd.restart()
        rd.recover()
        assert rd.lookup(1) == 42
