"""Tests for the PMLang virtual machine: traps, memory, threads, hooks."""

import pytest

from repro.errors import (
    ArithmeticTrap,
    AssertTrap,
    HangTrap,
    InjectedCrash,
    OutOfPMTrap,
    PanicTrap,
    ReproError,
    SegfaultTrap,
)
from repro.lang.compiler import compile_module
from repro.lang.interp import VOL_BASE, Machine
from tests.conftest import compile_and_run


def _expect_trap(src, fname, trap_cls, *args):
    """Compile, run, assert the trap type; returns (None, machine)."""
    module = compile_module("t", src)
    machine = Machine(module)
    with pytest.raises(trap_cls):
        machine.call(fname, *args)
    return None, machine


class TestTraps:
    def test_null_dereference_segfaults(self):
        src = "def f():\n    p = 0\n    return p[0]\n"
        module = compile_module("t", src)
        machine = Machine(module)
        with pytest.raises(SegfaultTrap):
            machine.call("f")
        assert machine.last_fault is not None
        assert machine.last_fault.kind == "segfault"
        assert machine.last_fault.iid >= 0

    def test_wild_pointer_segfaults(self):
        src = "def f():\n    p = 999999999\n    return p[0]\n"
        _, machine = _expect_trap(src, "f", SegfaultTrap)
        assert "load" in machine.last_fault.message

    def test_store_to_unmapped_segfaults(self):
        src = "def f():\n    p = 12345\n    p[0] = 1\n    return 0\n"
        _expect_trap(src, "f", SegfaultTrap)

    def test_use_after_vfree_segfaults(self):
        src = (
            "def f():\n"
            "    p = valloc(4)\n"
            "    vfree(p)\n"
            "    return p[0]\n"
        )
        _expect_trap(src, "f", SegfaultTrap)

    def test_division_by_zero(self):
        src = "def f(a):\n    return 1 // a\n"
        module = compile_module("t", src)
        with pytest.raises(ArithmeticTrap):
            Machine(module).call("f", 0)

    def test_assert_trap_carries_message(self):
        src = 'def f():\n    assert_true(0, "boom")\n    return 0\n'
        _, machine = _expect_trap(src, "f", AssertTrap)
        assert machine.last_fault.message == "boom"

    def test_panic_trap(self):
        src = 'def f():\n    panic("server panic")\n    return 0\n'
        _expect_trap(src, "f", PanicTrap)

    def test_plain_assert_statement(self):
        src = "def f(x):\n    assert x > 0, 'positive'\n    return x\n"
        module = compile_module("t", src)
        assert Machine(module).call("f", 1) == 1
        with pytest.raises(AssertTrap):
            Machine(module).call("f", 0)

    def test_hang_detection(self):
        src = "def f():\n    while True:\n        pass\n    return 0\n"
        module = compile_module("t", src)
        machine = Machine(module, step_budget=5000)
        with pytest.raises(HangTrap):
            machine.call("f")
        assert machine.last_fault.kind == "hang"

    def test_pm_exhaustion(self):
        src = (
            "def f():\n"
            "    while True:\n"
            "        p = pm_alloc(64)\n"
            "    return 0\n"
        )
        module = compile_module("t", src)
        with pytest.raises(OutOfPMTrap):
            Machine(module, pool_size=1024).call("f")

    def test_fault_stack_recorded(self):
        src = (
            "def inner():\n    panic('deep')\n    return 0\n"
            "def outer():\n    return inner()\n"
        )
        module = compile_module("t", src)
        machine = Machine(module)
        with pytest.raises(PanicTrap):
            machine.call("outer")
        funcs = [loc.split(":")[0] for loc in machine.last_fault.stack]
        assert funcs == ["outer", "inner"]

    def test_unset_register_is_host_error_not_trap(self):
        src = "def f(c):\n    if c:\n        x = 1\n    return x\n"
        module = compile_module("t", src)
        with pytest.raises(ReproError):
            Machine(module).call("f", 0)


class TestMemoryModel:
    def test_volatile_and_pm_are_disjoint(self):
        src = (
            "def f():\n"
            "    v = valloc(4)\n"
            "    p = pm_alloc(4)\n"
            "    v[0] = 1\n"
            "    p[0] = 2\n"
            "    return (p > v) * 10 + v[0] + p[0]\n"
        )
        assert compile_and_run(src, "f")[0] == 13

    def test_volatile_memory_lost_on_crash(self):
        src = (
            "def setup():\n"
            "    v = valloc(2)\n"
            "    v[0] = 9\n"
            "    return v\n"
            "def readv(v):\n"
            "    return v[0]\n"
        )
        module = compile_module("t", src)
        machine = Machine(module)
        v = machine.call("setup")
        assert machine.call("readv", v) == 9
        machine.crash()
        with pytest.raises(SegfaultTrap):
            machine.call("readv", v)

    def test_getroot_setroot(self):
        src = (
            "def setup():\n"
            "    p = pm_alloc(4)\n"
            "    set_root(p)\n"
            "    return p\n"
            "def readroot():\n"
            "    return get_root()\n"
        )
        module = compile_module("t", src)
        machine = Machine(module)
        p = machine.call("setup")
        assert machine.call("readroot") == p

    def test_emit_channel(self):
        src = 'def f(x):\n    emit("value", x)\n    emit("value", x + 1)\n    return 0\n'
        module = compile_module("t", src)
        machine = Machine(module)
        machine.call("f", 5)
        assert machine.emitted["value"] == [5, 6]
        assert machine.emitted_value("value") == 6
        assert machine.emitted_value("missing", -1) == -1


class TestInjections:
    def test_injected_crash(self):
        src = "def f():\n    nop()\n    return 1\n"
        module = compile_module("t", src)
        machine = Machine(module)
        nop_iid = next(i.iid for i in module.instructions() if i.op == "nop")

        def boom(m, thread, instr):
            raise InjectedCrash("now", location=instr.location())

        machine.add_injection(nop_iid, boom)
        with pytest.raises(InjectedCrash):
            machine.call("f")
        machine.clear_injections()
        assert machine.call("f") == 1

    def test_injection_can_mutate_state(self):
        src = (
            "def f():\n"
            "    p = pm_alloc(1)\n"
            "    p[0] = 7\n"
            "    persist(p, 1)\n"
            "    nop()\n"
            "    return p[0]\n"
        )
        module = compile_module("t", src)
        machine = Machine(module)
        nop_iid = next(i.iid for i in module.instructions() if i.op == "nop")

        def flip(m, thread, instr):
            # flip bit 0 of the first allocated word (hardware fault)
            addrs = sorted(m.allocator.allocations())
            m.pool.durable_write(addrs[0], m.pool.durable_read(addrs[0]) ^ 1)
            m.pool.discard_cached(addrs[0], 1)

        machine.add_injection(nop_iid, flip)
        assert machine.call("f") == 6


class TestThreads:
    def test_concurrent_interleaving_is_deterministic(self):
        src = (
            "def writer(p, v):\n"
            "    i = 0\n"
            "    while i < 20:\n"
            "        p[0] = v\n"
            "        thread_yield()\n"
            "        p[1] = p[0]\n"
            "        i = i + 1\n"
            "    return p[1]\n"
            "def setup():\n"
            "    return pm_alloc(2)\n"
        )
        module = compile_module("t", src)

        def run(seed):
            machine = Machine(module, seed=seed)
            p = machine.call("setup")
            return machine.call_concurrent(
                [("writer", (p, 1)), ("writer", (p, 2))]
            )

        assert run(3) == run(3)

    def test_background_thread_runs(self):
        src = (
            "def setup():\n    return pm_alloc(1)\n"
            "def bg(p):\n    p[0] = 42\n    persist(p, 1)\n    return 0\n"
            "def readp(p):\n    return p[0]\n"
        )
        module = compile_module("t", src)
        machine = Machine(module)
        p = machine.call("setup")
        machine.spawn("bg", p)
        assert machine.pending_background() == 1
        machine.run_background()
        assert machine.pending_background() == 0
        assert machine.call("readp", p) == 42

    def test_spawned_thread_dies_on_crash(self):
        src = (
            "def setup():\n    return pm_alloc(1)\n"
            "def bg(p):\n    p[0] = 42\n    persist(p, 1)\n    return 0\n"
            "def readp(p):\n    return p[0]\n"
        )
        module = compile_module("t", src)
        machine = Machine(module)
        p = machine.call("setup")
        machine.spawn("bg", p)
        machine.crash()
        assert machine.pending_background() == 0
        assert machine.call("readp", p) == 0


class TestTracing:
    def test_tracer_receives_pm_addresses(self):
        src = (
            "def f():\n"
            "    p = pm_alloc(2)\n"
            "    p[0] = 1\n"
            "    persist(p, 2)\n"
            "    return p[0]\n"
        )
        module = compile_module("t", src)
        # mark all instructions as traced
        for instr in module.instructions():
            instr.guid = f"g{instr.iid}"
        machine = Machine(module)
        records = []
        machine.tracer = lambda guid, addr: records.append((guid, addr))
        machine.call("f")
        assert records, "tracer saw no PM addresses"
        addrs = {a for _g, a in records}
        assert all(machine.pool.contains(a) for a in addrs)
