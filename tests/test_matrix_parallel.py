"""The parallel experiment-matrix runner (``repro.harness.matrix``).

Three properties gate the fan-out:

* **exactness** — a ``jobs=2`` process-pool sweep produces summary-equal
  cells to the ``jobs=1`` serial loop, cell by cell (cells are
  deterministic per (fault, solution, seed), so any divergence is a
  runner bug, not noise);
* **robustness** — a cell that raises inside a worker yields a per-cell
  error record while every other cell still completes;
* **fidelity** — the summary dict <-> :class:`ExperimentResult` round
  trip (including a JSON encode/decode, the on-disk cache format)
  preserves every field the table/figure benches consume.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.experiment import run_experiment
from repro.harness.matrix import (
    ALL_FAULT_IDS,
    CellSpec,
    comparable_summary,
    expand_matrix,
    result_from_summary,
    run_matrix,
    summarize_result,
)

#: a cheap 4-cell subset (sub-second cells, two systems, two solutions)
SUBSET = [
    CellSpec("f4", "arckpt", 0),
    CellSpec("f2", "pmcriu", 0),
    CellSpec("f10", "arckpt", 0),
    CellSpec("f4", "pmcriu", 0),
]


def test_expand_matrix_is_solution_major_cross_product():
    from repro.harness.matrix import ALL_SOLUTIONS

    specs = expand_matrix(seeds=(0, 1))
    assert len(specs) == len(ALL_FAULT_IDS) * len(ALL_SOLUTIONS) * 2
    assert len(set(specs)) == len(specs)
    # solution-major like the serial CLI sweep
    per_solution = len(ALL_FAULT_IDS) * 2
    assert specs[0].solution == specs[per_solution - 1].solution
    assert [s.fid for s in specs[:2]] == ["f1", "f1"]
    assert {s.fid for s in specs} == set(ALL_FAULT_IDS)


def test_parallel_summaries_equal_serial_cell_by_cell():
    serial = run_matrix(SUBSET, jobs=1)
    parallel = run_matrix(SUBSET, jobs=2)
    assert serial.n_errors == 0 and parallel.n_errors == 0
    assert [c.spec for c in serial.cells] == SUBSET  # spec order kept
    for ser_cell, par_cell in zip(serial.cells, parallel.cells):
        assert ser_cell.spec == par_cell.spec
        # comparable_summary zeroes the measured-wall-clock fields (the
        # slicer times itself); everything else must match exactly
        assert comparable_summary(ser_cell.summary) == comparable_summary(
            par_cell.summary
        ), ser_cell.spec.label()


def test_jobs4_and_nonzero_seeds_match_serial():
    # acceptance: --jobs >= 4 summary-identical at seed 0 AND a nonzero
    # seed (seeding feeds the trigger-time draw, so this exercises a
    # genuinely different trajectory per cell).  The f2/arthas cell runs
    # the full slicing+reversion pipeline — the part that is sensitive
    # to per-process hash randomization only through the wall-clock
    # field comparable_summary excludes.
    specs = [
        CellSpec("f4", "arckpt", 0),
        CellSpec("f2", "arthas", 0),
        CellSpec("f4", "arckpt", 3),
        CellSpec("f2", "pmcriu", 3),
        CellSpec("f10", "arckpt", 3),
    ]
    serial = run_matrix(specs, jobs=1)
    parallel = run_matrix(specs, jobs=4)
    assert serial.n_errors == 0 and parallel.n_errors == 0
    ser = {k: comparable_summary(v) for k, v in serial.summaries().items()}
    par = {k: comparable_summary(v) for k, v in parallel.summaries().items()}
    assert ser == par


def test_worker_exception_yields_error_record_not_abort():
    specs = [
        CellSpec("f4", "arckpt", 0),
        CellSpec("f99", "arthas", 0),   # unknown fault id -> KeyError
        CellSpec("f2", "nosuch", 0),    # unknown solution -> ValueError
        CellSpec("f4", "pmcriu", 0),
    ]
    report = run_matrix(specs, jobs=2)
    by_key = report.by_key()
    assert by_key[("f4", "arckpt", 0)].ok
    assert by_key[("f4", "pmcriu", 0)].ok
    bad_fid = by_key[("f99", "arthas", 0)]
    assert not bad_fid.ok
    assert bad_fid.error["kind"] == "exception"
    assert bad_fid.error["type"] == "KeyError"
    bad_sol = by_key[("f2", "nosuch", 0)]
    assert not bad_sol.ok
    assert bad_sol.error["type"] == "ValueError"
    assert report.n_errors == 2 and report.n_ok == 2
    with pytest.raises(RuntimeError):
        bad_fid.result()


def test_serial_path_reports_errors_identically():
    report = run_matrix([CellSpec("f99", "arthas", 0)], jobs=1)
    assert report.cells[0].error["type"] == "KeyError"
    assert report.cells[0].error["kind"] == "exception"


def test_cell_timeout_yields_timeout_record():
    # f1/arthas runs a multi-second mitigation; 50ms cannot finish it
    report = run_matrix(
        [CellSpec("f1", "arthas", 0)], jobs=1, cell_timeout=0.05
    )
    cell = report.cells[0]
    assert not cell.ok
    assert cell.error["kind"] == "timeout"


@pytest.mark.parametrize("fid,solution", [("f4", "arckpt"), ("f2", "pmcriu")])
def test_summary_round_trip_preserves_every_field(fid, solution):
    result = run_experiment(fid, solution, seed=0)
    summary = summarize_result(result)
    # through JSON: the exact payload the disk cache / results files hold
    rebuilt = result_from_summary(json.loads(json.dumps(summary)))
    assert rebuilt.fid == result.fid
    assert rebuilt.solution == result.solution
    assert rebuilt.seed == result.seed
    assert rebuilt.manifested == result.manifested
    assert rebuilt.confirmed_hard == result.confirmed_hard
    assert rebuilt.detection_fault == result.detection_fault
    assert rebuilt.detection_violation == result.detection_violation
    assert rebuilt.invariant_violations == result.invariant_violations
    assert rebuilt.checksum_hits == result.checksum_hits
    # MitigationRun is a dataclass: == covers every field the benches use
    assert rebuilt.mitigation == result.mitigation
    assert rebuilt.mitigation.discarded_pct == result.mitigation.discarded_pct
    # and the round trip is a fixed point
    assert summarize_result(rebuilt) == summary


def test_round_trip_of_unmanifested_and_faultless_cells():
    # a summary with no mitigation/fault must survive the trip too
    from repro.harness.experiment import ExperimentResult

    bare = ExperimentResult(
        fid="f1", solution="arthas", seed=5, manifested=False
    )
    summary = summarize_result(bare)
    rebuilt = result_from_summary(json.loads(json.dumps(summary)))
    assert rebuilt == bare
