"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_faults(capsys):
    assert main(["list-faults"]) == 0
    out = capsys.readouterr().out
    assert "f1" in out and "f12" in out
    assert "memcached" in out and "pmemkv" in out


def test_study(capsys):
    assert main(["study"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "logic error" in out
    assert "Type II" in out


def test_analyze(capsys):
    assert main(["analyze", "--system", "pmemkv"]) == 0
    out = capsys.readouterr().out
    assert "PDG edges" in out
    assert "PM instructions" in out


def test_run_fast_fault(capsys):
    assert main(["run", "--fault", "f11", "--solution", "arthas"]) == 0
    out = capsys.readouterr().out
    assert "recovered=True" in out


def test_run_failing_solution_returns_nonzero(capsys):
    assert main(["run", "--fault", "f11", "--solution", "arckpt"]) == 1


def test_cluster_status(capsys):
    assert main(["cluster-status"]) == 0
    out = capsys.readouterr().out
    assert "recovered=True" in out
    assert "demoted" in out and "serving" in out


def test_cluster_sweep_quick_check(capsys):
    # the committed report must match a fresh quick sweep (CI drift job)
    assert main(["cluster-sweep", "--quick", "--check"]) == 0
    out = capsys.readouterr().out
    assert "converged" in out


def test_parser_rejects_unknown():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--fault", "f99"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nonsense"])
