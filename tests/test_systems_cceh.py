"""Tests for the CCEH target system and the directory-doubling bug."""

import pytest

from repro.errors import HangTrap, InjectedCrash, Trap
from repro.systems.cceh import CCEHAdapter


@pytest.fixture
def cc():
    adapter = CCEHAdapter()
    adapter.start()
    return adapter


class TestBasicOps:
    def test_insert_get(self, cc):
        cc.insert(1, 11)
        assert cc.lookup(1) == 11
        assert cc.lookup(2) == -1

    def test_update_existing(self, cc):
        cc.insert(1, 11)
        cc.insert(1, 22)
        assert cc.lookup(1) == 22
        assert cc.count_items() == 1

    def test_delete(self, cc):
        cc.insert(1, 11)
        cc.insert(2, 22)
        assert cc.delete(1) == 1
        assert cc.lookup(1) == -1
        assert cc.lookup(2) == 22
        assert cc.delete(1) == 0

    def test_growth_through_splits_and_doubling(self, cc):
        for k in range(200):
            cc.insert(k, k * 3)
        assert all(cc.lookup(k) == k * 3 for k in range(200))
        assert cc.consistency_violations() == []
        gd = cc.pool.read(cc.root + cc.STRUCTS["ccroot"].index("cc_gd"))
        assert gd > 2  # the directory doubled at least once

    def test_restart_preserves_data(self, cc):
        for k in range(50):
            cc.insert(k, k)
        cc.restart()
        cc.recover()
        assert all(cc.lookup(k) == k for k in range(50))
        assert cc.consistency_violations() == []


class TestF9DoublingBug:
    def test_crash_before_depth_bump_wedges_inserts(self, cc):
        iid = cc.double_crash_iid()

        def crash(machine, thread, instr):
            raise InjectedCrash("untimely", location=instr.location())

        cc.machine.add_injection(iid, crash)
        key = 0
        stuck = None
        for key in range(2000):
            try:
                cc.insert(key, key)
            except InjectedCrash:
                stuck = key
                break
        assert stuck is not None
        cc.restart()  # injection dies with the machine
        cc.recover()
        # metadata is inconsistent: dircap was doubled, depth was not
        assert cc.consistency_violations()
        with pytest.raises(HangTrap):
            cc.insert(stuck, stuck)
        # and it recurs after another restart: a hard fault
        cc.restart()
        cc.recover()
        with pytest.raises(HangTrap):
            cc.insert(stuck, stuck)

    def test_lookups_still_work_in_wedged_state(self, cc):
        iid = cc.double_crash_iid()
        cc.machine.add_injection(
            iid,
            lambda m, t, i: (_ for _ in ()).throw(
                InjectedCrash("untimely", location=i.location())
            ),
        )
        inserted = []
        for key in range(2000):
            try:
                cc.insert(key, key)
                inserted.append(key)
            except InjectedCrash:
                break
        cc.restart()
        cc.recover()
        assert all(cc.lookup(k) == k for k in inserted)
