"""Tests for the reversion engine: purge, rollback, repair, guards."""

from repro.checkpoint.log import CheckpointLog
from repro.detector.monitor import RunOutcome
from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PM_BASE, PMPool
from repro.reactor.plan import Candidate, ReversionPlan
from repro.reactor.revert import Reverter


def _stack(max_versions=3):
    pool = PMPool(2048)
    allocator = PMAllocator(pool)
    log = CheckpointLog(max_versions=max_versions)
    return pool, allocator, log


def _reverter(pool, allocator, log, outcomes=None, **kw):
    outcomes = list(outcomes or [])

    def reexec():
        return outcomes.pop(0) if outcomes else RunOutcome(ok=True)

    return Reverter(log, pool, allocator, reexec=reexec, **kw)


def _persist(pool, log, addr, values, tx_id=0):
    for i, v in enumerate(values):
        pool.durable_write(addr + i, v)
    return log.record_update(addr, len(values), list(values), tx_id=tx_id)


class TestRevertUpdateSeq:
    def test_revert_to_previous_version(self):
        pool, allocator, log = _stack()
        a = allocator.zalloc(2)
        s1 = _persist(pool, log, a, [1, 2])
        s2 = _persist(pool, log, a, [9, 9])
        rev = _reverter(pool, allocator, log)
        assert rev.revert_update_seq(s2)
        assert pool.durable_read(a) == 1
        assert pool.durable_read(a + 1) == 2

    def test_first_ever_version_is_not_blindly_unwritten(self):
        """Reverting an entry's only version has no recorded pre-image;
        the reactor skips it rather than zero-fill (which could un-write
        a system's initialisation)."""
        pool, allocator, log = _stack()
        a = allocator.zalloc(2)
        s1 = _persist(pool, log, a, [5, 6])
        rev = _reverter(pool, allocator, log)
        assert not rev.revert_update_seq(s1)
        assert pool.durable_read(a) == 5

    def test_uninformed_reversion_skipped_when_history_evicted(self):
        pool, allocator, log = _stack(max_versions=2)
        a = allocator.zalloc(1)
        for v in range(5):
            _persist(pool, log, a, [v])
        entry = log.entries[a]
        oldest_retained = entry.versions[0].seq
        rev = _reverter(pool, allocator, log)
        # reverting the oldest retained version cannot know the true
        # pre-state; the floor re-applies that version (effective no-op)
        rev.revert_update_seq(oldest_retained)
        assert pool.durable_read(a) == entry.versions[0].data[0]

    def test_steps_back_reaches_older_versions(self):
        pool, allocator, log = _stack(max_versions=5)
        a = allocator.zalloc(1)
        seqs = [_persist(pool, log, a, [v]) for v in (10, 20, 30)]
        rev = _reverter(pool, allocator, log)
        assert rev.revert_update_seq(seqs[2], steps_back=2)
        assert pool.durable_read(a) == 10

    def test_overlapping_entries_reconstructed(self):
        """A wide persist covering neighbours must restore them from
        their own entries, not zeros (the buffer-overflow case)."""
        pool, allocator, log = _stack()
        a = allocator.zalloc(4)
        b = allocator.zalloc(4)
        assert b == a + 4
        _persist(pool, log, a, [1, 1, 1, 1])
        _persist(pool, log, b, [2, 2, 2, 2])
        # overflow: one persist covering both blocks with junk
        s_bad = _persist(pool, log, a, [7, 7, 7, 7, 7, 7, 7, 7])
        rev = _reverter(pool, allocator, log)
        assert rev.revert_update_seq(s_bad)
        assert [pool.durable_read(a + i) for i in range(4)] == [1, 1, 1, 1]
        assert [pool.durable_read(b + i) for i in range(4)] == [2, 2, 2, 2]

    def test_mixed_size_versions_at_same_base(self):
        """Whole-struct persist then field persist at the same address."""
        pool, allocator, log = _stack()
        a = allocator.zalloc(4)
        _persist(pool, log, a, [1, 2, 3, 4])  # whole struct
        s_field = _persist(pool, log, a, [9])  # field 0 only
        s_bad = _persist(pool, log, a + 3, [77])
        rev = _reverter(pool, allocator, log)
        assert rev.revert_update_seq(s_bad)
        # word 3 restored from the whole-struct version
        assert pool.durable_read(a + 3) == 4
        # word 0 keeps the newer field persist
        assert pool.durable_read(a) == 9

    def test_non_update_seq_rejected(self):
        pool, allocator, log = _stack()
        s = log.record_alloc(PM_BASE + 64, 4)
        rev = _reverter(pool, allocator, log)
        assert not rev.revert_update_seq(s)


class TestDanglingGuard:
    def test_unfrees_referenced_block(self):
        pool, allocator, log = _stack()
        slot = allocator.zalloc(1)
        item = allocator.zalloc(4)
        s1 = _persist(pool, log, slot, [item])
        s2 = _persist(pool, log, slot, [0])  # delete: unlink...
        log.record_free(item, 4)
        allocator.free(item)  # ...and free
        rev = _reverter(pool, allocator, log)
        assert rev.revert_update_seq(s2, guard_dangling=True)
        assert pool.durable_read(slot) == item
        assert allocator.is_allocated(item)  # the free was reverted too

    def test_skips_when_unfree_impossible(self):
        pool, allocator, log = _stack()
        slot = allocator.zalloc(1)
        item = allocator.zalloc(4)
        s1 = _persist(pool, log, slot, [item + 2])  # interior pointer
        s2 = _persist(pool, log, slot, [0])
        log.record_free(item, 4)
        allocator.free(item)
        other = allocator.zalloc(2)  # reuses the front of the freed range
        assert other == item
        rev = _reverter(pool, allocator, log)
        # item+2 is free but its covering free event cannot be reverted
        # (the range is partially reused), so the reversion is skipped
        assert not rev.revert_update_seq(s2, guard_dangling=True)
        assert pool.durable_read(slot) == 0  # untouched


class TestRollback:
    def test_rollback_reverts_everything_after_cut(self):
        pool, allocator, log = _stack()
        a = allocator.zalloc(1)
        b = allocator.zalloc(1)
        s1 = _persist(pool, log, a, [1])
        s2 = _persist(pool, log, b, [2])
        s3 = _persist(pool, log, a, [10])
        s4 = _persist(pool, log, b, [20])
        rev = _reverter(pool, allocator, log)
        reverted = rev.rollback_to_before(s3)
        assert set(reverted) == {s3, s4}
        assert pool.durable_read(a) == 1
        assert pool.durable_read(b) == 2

    def test_rollback_unfrees_and_frees_allocs(self):
        pool, allocator, log = _stack()
        a = allocator.zalloc(4)
        pad = allocator.zalloc(2)  # barrier: keeps a's hole isolated
        log.record_alloc(a, 4)
        cut = log.max_seq() + 1
        # after the cut: free a, then allocate b (bigger than a's hole,
        # so it lands at a fresh address rather than reusing a's extent)
        log.record_free(a, 4)
        allocator.free(a)
        b = allocator.zalloc(8)
        log.record_alloc(b, 8)
        assert b != a
        del pad
        rev = _reverter(pool, allocator, log)
        rev.rollback_to_before(cut)
        assert allocator.is_allocated(a)
        assert not allocator.is_allocated(b)


class TestStrategies:
    def _plan(self, log, seqs, fault_iid=0):
        cands = []
        for s in seqs:
            ev = log.event(s)
            cands.append(Candidate(seq=s, addr=ev.addr, guid="g", slice_iid=-1))
        return ReversionPlan(fault_iid=fault_iid, candidates=cands)

    def test_purge_stops_at_first_success(self):
        pool, allocator, log = _stack()
        a = allocator.zalloc(1)
        s1 = _persist(pool, log, a, [1])
        s2 = _persist(pool, log, a, [2])
        outcomes = [RunOutcome(ok=True)]
        rev = _reverter(pool, allocator, log, outcomes)
        res = rev.mitigate_purge(self._plan(log, [s2, s1]))
        assert res.recovered
        assert res.attempts == 1
        assert pool.durable_read(a) == 1

    def test_purge_marches_until_success(self):
        pool, allocator, log = _stack()
        a = allocator.zalloc(1)
        b = allocator.zalloc(1)
        _persist(pool, log, a, [1])
        _persist(pool, log, b, [1])
        s2 = _persist(pool, log, b, [2])
        s3 = _persist(pool, log, a, [3])
        outcomes = [
            RunOutcome(ok=False, violation="still broken"),
            RunOutcome(ok=True),
        ]
        rev = _reverter(pool, allocator, log, outcomes)
        res = rev.mitigate_purge(self._plan(log, [s3, s2]))
        assert res.recovered
        assert res.attempts == 2
        assert pool.durable_read(a) == 1
        assert pool.durable_read(b) == 1

    def test_purge_empty_plan_aborts(self):
        pool, allocator, log = _stack()
        rev = _reverter(pool, allocator, log)
        res = rev.mitigate_purge(ReversionPlan(fault_iid=0))
        assert not res.recovered
        assert res.aborted_empty_plan

    def test_purge_tx_closure(self):
        pool, allocator, log = _stack()
        a = allocator.zalloc(1)
        b = allocator.zalloc(1)
        _persist(pool, log, a, [1], tx_id=0)
        _persist(pool, log, b, [1], tx_id=0)
        log.record_tx_begin(5)
        sa = _persist(pool, log, a, [7], tx_id=5)
        sb = _persist(pool, log, b, [8], tx_id=5)
        log.record_tx_commit(5)
        outcomes = [RunOutcome(ok=True)]
        rev = _reverter(pool, allocator, log, outcomes)
        res = rev.mitigate_purge(self._plan(log, [sb]))
        assert res.recovered
        # reverting one member reverted the whole transaction
        assert pool.durable_read(a) == 1
        assert pool.durable_read(b) == 1

    def test_rollback_strategy(self):
        pool, allocator, log = _stack()
        a = allocator.zalloc(1)
        b = allocator.zalloc(1)
        s1 = _persist(pool, log, a, [1])
        s2 = _persist(pool, log, a, [2])
        s3 = _persist(pool, log, b, [3])
        outcomes = [RunOutcome(ok=True)]
        rev = _reverter(pool, allocator, log, outcomes)
        res = rev.mitigate_rollback(self._plan(log, [s2]))
        assert res.recovered
        assert pool.durable_read(a) == 1
        assert pool.durable_read(b) == 0  # s3 was after the cut

    def test_batch_mode_groups_reverts(self):
        pool, allocator, log = _stack()
        addrs = [allocator.zalloc(1) for _ in range(4)]
        seqs = []
        for x in addrs:
            _persist(pool, log, x, [1])
        for x in addrs:
            seqs.append(_persist(pool, log, x, [9]))
        outcomes = [RunOutcome(ok=False, violation="no"), RunOutcome(ok=True)]
        rev = _reverter(pool, allocator, log, outcomes)
        res = rev.mitigate_purge(self._plan(log, list(reversed(seqs))), batch_size=2)
        assert res.recovered
        assert res.attempts == 2
        assert res.discarded_updates == 4

    def test_new_fault_stops_strategy(self):
        pool, allocator, log = _stack()
        a = allocator.zalloc(1)
        s1 = _persist(pool, log, a, [1])
        s2 = _persist(pool, log, a, [2])
        from repro.lang.interp import FaultInfo

        new_fault = FaultInfo(iid=999, kind="assert", message="other", location="x")
        outcomes = [RunOutcome(ok=False, fault=new_fault)]
        rev = _reverter(pool, allocator, log, outcomes, known_faults={1})
        res = rev.mitigate_purge(self._plan(log, [s2, s1]))
        assert not res.recovered
        assert res.attempts == 1
        assert "new fault" in res.notes

    def test_timeout(self):
        pool, allocator, log = _stack()
        a = allocator.zalloc(1)
        seqs = [_persist(pool, log, a, [v]) for v in range(3)]
        rev = _reverter(
            pool,
            allocator,
            log,
            [RunOutcome(ok=False, violation="x")] * 50,
            timeout_seconds=5.0,
            reexec_delay=lambda: 4.0,
        )
        res = rev.mitigate_purge(self._plan(log, list(reversed(seqs))))
        assert not res.recovered
        assert res.timed_out


class TestDivergenceRepair:
    def test_repairs_out_of_band_corruption(self):
        pool, allocator, log = _stack()
        a = allocator.zalloc(2)
        s1 = _persist(pool, log, a, [5, 6])
        pool.durable_write(a, 4)  # bit flip, bypassing persistence
        outcomes = [RunOutcome(ok=True)]
        rev = _reverter(pool, allocator, log, outcomes)
        plan = ReversionPlan(
            fault_iid=0,
            candidates=[Candidate(seq=s1, addr=a, guid="g", slice_iid=-1)],
        )
        res = rev.mitigate_purge(plan)
        assert res.recovered
        assert res.attempts == 1
        assert pool.durable_read(a) == 5  # repaired, not reverted
        assert "divergent" in res.notes

    def test_no_repair_when_consistent(self):
        pool, allocator, log = _stack()
        a = allocator.zalloc(1)
        s1 = _persist(pool, log, a, [5])
        rev = _reverter(pool, allocator, log)
        plan = ReversionPlan(
            fault_iid=0,
            candidates=[Candidate(seq=s1, addr=a, guid="g", slice_iid=-1)],
        )
        assert rev.repair_divergence(plan) == []

    def test_repair_disabled_flag(self):
        pool, allocator, log = _stack()
        a = allocator.zalloc(1)
        s1 = _persist(pool, log, a, [5])
        pool.durable_write(a, 4)
        rev = _reverter(
            pool, allocator, log,
            [RunOutcome(ok=False, violation="x"), RunOutcome(ok=True)],
            enable_divergence_repair=False,
        )
        plan = ReversionPlan(
            fault_iid=0,
            candidates=[Candidate(seq=s1, addr=a, guid="g", slice_iid=-1)],
        )
        res = rev.mitigate_purge(plan)
        # without repair nothing re-applies the logged value, and the only
        # version has no recorded pre-image, so nothing changes at all
        assert pool.durable_read(a) == 4
        assert not res.recovered
