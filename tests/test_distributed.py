"""Tests for the distributed recovery extension (paper Section 7)."""

import pytest

from repro.detector.monitor import Detector
from repro.distributed.cluster import Cluster, ClusterClient, vc_leq, vc_less, vc_merge
from repro.distributed.recovery import DistributedReactor
from repro.errors import Trap


class TestVectorClocks:
    def test_ordering(self):
        assert vc_leq((1, 2), (1, 2))
        assert vc_less((1, 2), (2, 2))
        assert not vc_less((1, 2), (1, 2))
        assert not vc_less((2, 1), (1, 2))  # concurrent

    def test_merge(self):
        assert vc_merge((1, 5), (3, 2)) == (3, 5)

    def test_dimension_mismatch_raises_instead_of_truncating(self):
        # zip() used to drop the extra components, so a 3-dim clock
        # could compare "leq" a 2-dim one and merges lost history
        with pytest.raises(ValueError, match="dimension mismatch"):
            vc_leq((1, 2, 3), (1, 2))
        with pytest.raises(ValueError, match="dimension mismatch"):
            vc_less((1, 2), (1, 2, 3))
        with pytest.raises(ValueError, match="dimension mismatch"):
            vc_merge((1,), (1, 2))


class TestCluster:
    def test_routing_and_lookup(self):
        cluster = Cluster(n_nodes=3)
        client = ClusterClient(cluster, 0)
        for key in range(12):
            client.insert(key, 100 + key)
        assert all(client.lookup(k) == 100 + k for k in range(12))
        # keys spread over all nodes
        assert {cluster.node_for(k) for k in range(12)} == {0, 1, 2}

    def test_oplog_records_sequence_spans(self):
        cluster = Cluster(n_nodes=2)
        client = ClusterClient(cluster, 0)
        rec = client.insert(4, 7)
        assert rec.first_seq <= rec.last_seq
        node = cluster.nodes[rec.node]
        assert node.ckpt.log.max_seq() >= rec.last_seq

    def test_vector_clocks_capture_causality(self):
        cluster = Cluster(n_nodes=3, n_clients=2)
        a = ClusterClient(cluster, 0)
        b = ClusterClient(cluster, 1)
        r1 = a.insert(0, 1)      # client 0 on node 0
        r2 = a.insert(1, 2)      # client 0 on node 1: after r1
        r3 = b.insert(2, 3)      # client 1 on node 2: independent of r1
        assert vc_less(r1.vc, r2.vc)
        assert not vc_less(r1.vc, r3.vc)

    def test_read_creates_causal_edge(self):
        cluster = Cluster(n_nodes=2, n_clients=2)
        a = ClusterClient(cluster, 0)
        b = ClusterClient(cluster, 1)
        r1 = a.insert(0, 41)
        b.lookup(0)              # b observes node 0's state
        r2 = b.insert(1, 42)     # now causally after r1
        assert vc_less(r1.vc, r2.vc)

    def test_ops_overlapping_seqs_intersects_spans(self):
        cluster = Cluster(n_nodes=1)
        client = ClusterClient(cluster, 0)
        recs = [client.insert(k, 100 + k) for k in range(4)]
        spans = [(r.first_seq, r.last_seq) for r in recs]
        # exactly the middle two ops: every seq of their spans
        target = set(range(spans[1][0], spans[2][1] + 1))
        hit = cluster.ops_overlapping_seqs(0, target)
        assert [op.op_id for op in hit] == [recs[1].op_id, recs[2].op_id]
        # a single boundary seq still finds its op
        assert cluster.ops_overlapping_seqs(0, {spans[3][1]}) == [recs[3]]
        assert cluster.ops_overlapping_seqs(0, set()) == []
        # seqs beyond any span match nothing
        assert cluster.ops_overlapping_seqs(0, {spans[3][1] + 1000}) == []

    def test_ops_overlapping_seqs_skips_empty_spans(self):
        cluster = Cluster(n_nodes=1)
        client = ClusterClient(cluster, 0)
        rec = client.insert(0, 1)
        # an operation that produced no checkpoint records: its span is
        # empty (first > last) and must never be discarded
        empty = client.delete(999)
        assert empty.first_seq > empty.last_seq
        every_seq = set(range(1, cluster.nodes[0].ckpt.log.max_seq() + 1))
        hit = cluster.ops_overlapping_seqs(0, every_seq)
        assert rec in hit and empty not in hit

    def test_derived_insert(self):
        cluster = Cluster(n_nodes=2)
        client = ClusterClient(cluster, 0)
        r1 = client.insert(0, 10)
        r2 = client.derived_insert(0, 1)
        assert r2 is not None
        assert client.lookup(1) == 11
        assert vc_less(r1.vc, r2.vc)
        assert client.derived_insert(99, 3) is None  # missing source


class TestDistributedRecovery:
    def _poisoned_cluster(self):
        """Node 0 wedged by the memcached f1 bug; cross-node dependents."""
        cluster = Cluster(n_nodes=3, n_clients=2)
        a = ClusterClient(cluster, 0)
        b = ClusterClient(cluster, 1)
        for key in range(30):
            a.insert(key, 500 + key)
        node0 = cluster.nodes[0]
        victim = 0  # a key on node 0
        while node0.call("mc_refcount", node0.root, victim) != 0:
            node0.lookup(victim)
        node0.reap()
        poison_key = victim + 3 * (1 << 20)  # node 0, same bucket
        assert cluster.node_for(poison_key) == 0
        poison_op = b.insert(poison_key, 999)
        # b reads the poisoned insert's node, then writes derived data on
        # other nodes: cross-node causal dependents of the poisoned op
        dep1 = b.insert(poison_key + 1, 1000)  # node 1, after poison
        dep2 = b.insert(poison_key + 2, 1001)  # node 2, after poison
        # client a keeps working independently (no new reads of node 0)
        indep = a.insert(31, 531)  # node 1, concurrent with the poison
        probe = victim + 5 * (1 << 20)
        return cluster, poison_op, (dep1, dep2), indep, probe

    def test_cascading_recovery(self):
        cluster, poison_op, deps, indep, probe = self._poisoned_cluster()
        node0 = cluster.nodes[0]
        detector = Detector()
        outcome = detector.observe(
            node0.machine, lambda: node0.lookup(probe)
        )
        assert not outcome.ok and outcome.fault.kind == "hang"

        reactor = DistributedReactor(cluster)

        def verify():
            assert node0.lookup(probe) == -1

        report = reactor.mitigate(0, outcome.fault.iid, verify)
        assert report.recovered
        # the poisoned insert was discarded locally
        assert any(op.op_id == poison_op.op_id for op in report.discarded_ops)
        # its causal dependents on other nodes were cascaded
        cascaded_ids = {op.op_id for op in report.cascaded_ops}
        assert deps[0].op_id in cascaded_ids
        assert deps[1].op_id in cascaded_ids
        # ...and are gone from their nodes
        assert cluster.nodes[deps[0].node].lookup(deps[0].key) == -1
        # the independent concurrent op survived
        if indep.op_id not in cascaded_ids:
            assert cluster.nodes[indep.node].lookup(indep.key) == 531

    def test_no_cascade_without_dependents(self):
        cluster = Cluster(n_nodes=2, n_clients=1)
        client = ClusterClient(cluster, 0)
        r1 = client.insert(0, 1)
        reactor = DistributedReactor(cluster)
        # nothing discarded -> nothing cascades
        orphans = reactor._orphans_of([])
        assert orphans == []
