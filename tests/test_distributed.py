"""Tests for the distributed recovery extension (paper Section 7)."""

import pytest

from repro.detector.monitor import Detector
from repro.distributed.cluster import (
    Cluster,
    ClusterClient,
    ShardUnavailable,
    vc_leq,
    vc_less,
    vc_merge,
)
from repro.distributed.recovery import DistributedReactor
from repro.systems.common import ABSENT

_ClusterImpl = Cluster


def Cluster(*args, **kwargs):  # noqa: N802 — drop-in for the class
    """These tests encode the re-execution engine's replica-subset
    semantics (an op's spans cover exactly its routing replica set), so
    they pin the oracle engine; the delta engine's full-mirror span
    behaviour is covered by test_delta_replication.py."""
    kwargs.setdefault("replication_engine", "reexec")
    return _ClusterImpl(*args, **kwargs)


class TestVectorClocks:
    def test_ordering(self):
        assert vc_leq((1, 2), (1, 2))
        assert vc_less((1, 2), (2, 2))
        assert not vc_less((1, 2), (1, 2))
        assert not vc_less((2, 1), (1, 2))  # concurrent

    def test_merge(self):
        assert vc_merge((1, 5), (3, 2)) == (3, 5)

    def test_dimension_mismatch_raises_instead_of_truncating(self):
        # zip() used to drop the extra components, so a 3-dim clock
        # could compare "leq" a 2-dim one and merges lost history
        with pytest.raises(ValueError, match="dimension mismatch"):
            vc_leq((1, 2, 3), (1, 2))
        with pytest.raises(ValueError, match="dimension mismatch"):
            vc_less((1, 2), (1, 2, 3))
        with pytest.raises(ValueError, match="dimension mismatch"):
            vc_merge((1,), (1, 2))


def _key_avoiding(cluster, primary, avoid_nodes, start=0):
    """A key whose whole replica set avoids ``avoid_nodes``."""
    key = start
    while True:
        nodes = cluster.replica_nodes_for(key)
        if nodes and nodes[0] == primary and not (set(nodes) & set(avoid_nodes)):
            return key
        key += 1
        assert key < start + 2_000_000


class TestCluster:
    def test_routing_and_lookup(self):
        cluster = Cluster(n_nodes=3)
        client = ClusterClient(cluster, 0)
        for key in range(24):
            client.insert(key, 100 + key)
        assert all(client.lookup(k) == 100 + k for k in range(24))
        # the ring spreads keys over all nodes
        assert {cluster.node_for(k) for k in range(24)} == {0, 1, 2}

    def test_oplog_records_sequence_spans(self):
        cluster = Cluster(n_nodes=2)
        client = ClusterClient(cluster, 0)
        rec = client.insert(4, 7)
        assert rec.first_seq <= rec.last_seq
        node = cluster.nodes[rec.node]
        assert node.ckpt.log.max_seq() >= rec.last_seq
        # replication: a span on the primary AND each replica
        assert len(rec.spans) == cluster.replication == 2
        assert rec.spans[rec.node] == (rec.first_seq, rec.last_seq)

    def test_replicas_hold_the_data(self):
        cluster = Cluster(n_nodes=3, replication=2)
        client = ClusterClient(cluster, 0)
        rec = client.insert(17, 1717)
        for nid in rec.spans:
            assert cluster.nodes[nid].lookup(17) == 1717

    def test_vector_clocks_capture_causality(self):
        # five nodes so two keys can have fully disjoint replica sets
        cluster = Cluster(n_nodes=5, n_clients=2)
        a = ClusterClient(cluster, 0)
        b = ClusterClient(cluster, 1)
        k1 = _key_avoiding(cluster, 0, [])
        set1 = cluster.replica_nodes_for(k1)
        k2 = _key_avoiding(cluster, set1[1], [])  # touches a shared node
        outside = [n for n in range(5) if n not in set1]
        k3 = _key_avoiding(cluster, outside[0], set1)
        r1 = a.insert(k1, 1)     # client 0
        r2 = a.insert(k2, 2)     # client 0 again: after r1 via the client
        r3 = b.insert(k3, 3)     # client 1, disjoint replica set: independent
        assert vc_less(r1.vc, r2.vc)
        assert not vc_less(r1.vc, r3.vc)

    def test_replica_stamping_is_one_way(self):
        # an op on primary P replicated to R must not serialize a later
        # op whose primary is elsewhere — but a later op *primaried* on
        # R must inherit it (reads after promotion stay causal)
        cluster = Cluster(n_nodes=5, n_clients=2)
        a = ClusterClient(cluster, 0)
        b = ClusterClient(cluster, 1)
        k1 = _key_avoiding(cluster, 0, [])
        replica = cluster.replica_nodes_for(k1)[1]
        r1 = a.insert(k1, 10)
        k_on_replica = _key_avoiding(cluster, replica, [])
        r2 = b.insert(k_on_replica, 20)
        assert vc_less(r1.vc, r2.vc)  # replica stored r1, so its events follow

    def test_read_creates_causal_edge(self):
        cluster = Cluster(n_nodes=2, n_clients=2)
        a = ClusterClient(cluster, 0)
        b = ClusterClient(cluster, 1)
        r1 = a.insert(0, 41)
        b.lookup(0)              # b observes the primary's state
        r2 = b.insert(1, 42)     # now causally after r1
        assert vc_less(r1.vc, r2.vc)

    def test_ops_overlapping_seqs_intersects_spans(self):
        cluster = Cluster(n_nodes=1)
        client = ClusterClient(cluster, 0)
        recs = [client.insert(k, 100 + k) for k in range(4)]
        spans = [(r.first_seq, r.last_seq) for r in recs]
        # exactly the middle two ops: every seq of their spans
        target = set(range(spans[1][0], spans[2][1] + 1))
        hit = cluster.ops_overlapping_seqs(0, target)
        assert [op.op_id for op in hit] == [recs[1].op_id, recs[2].op_id]
        # a single boundary seq still finds its op
        assert cluster.ops_overlapping_seqs(0, {spans[3][1]}) == [recs[3]]
        assert cluster.ops_overlapping_seqs(0, set()) == []
        # seqs beyond any span match nothing
        assert cluster.ops_overlapping_seqs(0, {spans[3][1] + 1000}) == []

    def test_ops_overlapping_seqs_skips_empty_spans(self):
        cluster = Cluster(n_nodes=1)
        client = ClusterClient(cluster, 0)
        rec = client.insert(0, 1)
        # an operation that produced no checkpoint records: its span is
        # empty (first > last) and must never be discarded
        empty = client.delete(999)
        assert empty.first_seq > empty.last_seq
        every_seq = set(range(1, cluster.nodes[0].ckpt.log.max_seq() + 1))
        hit = cluster.ops_overlapping_seqs(0, every_seq)
        assert rec in hit and empty not in hit

    def test_ops_on_node_uses_per_node_index(self):
        cluster = Cluster(n_nodes=3, replication=2)
        client = ClusterClient(cluster, 0)
        recs = [client.insert(k, k) for k in range(12)]
        for nid in range(3):
            indexed = cluster.ops_on_node(nid)
            scanned = [op for op in cluster.oplog if nid in op.spans]
            assert indexed == scanned
        # replication means an op shows up on every node it touched
        assert sum(len(cluster.ops_on_node(n)) for n in range(3)) == 2 * len(recs)

    def test_delete_records_value_none(self):
        cluster = Cluster(n_nodes=1)
        client = ClusterClient(cluster, 0)
        client.insert(0, 0)          # a real stored zero
        rec = client.delete(0)
        assert rec.kind == "delete" and rec.value is None

    def test_absent_sentinel_is_not_storable(self):
        cluster = Cluster(n_nodes=1)
        client = ClusterClient(cluster, 0)
        with pytest.raises(ValueError, match="ABSENT"):
            client.insert(5, ABSENT)
        # a genuinely stored -1 can therefore never exist, so the miss
        # protocol stays unambiguous; values near it are fine
        client.insert(5, -2)
        assert client.lookup(5) == -2
        assert client.lookup(12345) == ABSENT

    def test_derived_insert(self):
        cluster = Cluster(n_nodes=2)
        client = ClusterClient(cluster, 0)
        r1 = client.insert(0, 10)
        r2 = client.derived_insert(0, 1)
        assert r2 is not None
        assert client.lookup(1) == 11
        assert vc_less(r1.vc, r2.vc)
        assert client.derived_insert(99, 3) is None  # missing source

    def test_shard_unavailable_when_chain_down(self):
        cluster = Cluster(n_nodes=2, replication=2)
        client = ClusterClient(cluster, 0)
        client.insert(3, 33)
        cluster.ring.mark_down(0)
        cluster.ring.mark_down(1)
        with pytest.raises(ShardUnavailable):
            client.lookup(3)
        with pytest.raises(ShardUnavailable):
            client.insert(4, 44)


def _poisoned_cluster():
    """Node 0 wedged by the memcached f1 bug; cross-node dependents.

    replication=1 keeps replica sets disjoint on three nodes, so the
    seed's causality structure (deps cascade, independents survive) is
    preserved under ring routing.
    """
    cluster = Cluster(n_nodes=3, n_clients=2, replication=1)
    a = ClusterClient(cluster, 0)
    b = ClusterClient(cluster, 1)
    # warm every node's buckets so later reverts have preimages
    for key in range(30):
        a.insert(key, 500 + key)
    node0 = cluster.nodes[0]
    victim = cluster.keys_for_node(0, 1)[0]

    def warm_bucket_key(node_id, bucket, start):
        key = start
        while key % 64 != bucket or cluster.node_for(key) != node_id:
            key += 1
        return key

    while node0.call("mc_refcount", node0.root, victim) != 0:
        node0.lookup(victim)
    node0.reap()
    # same hash bucket (key % 64), same primary: hits the dangling chain
    poison_key = warm_bucket_key(0, victim % 64, victim + 64)
    poison_op = b.insert(poison_key, 999)
    # b reads the poisoned insert's node, then writes derived data on
    # other nodes: cross-node causal dependents of the poisoned op
    warm1 = [k for k in range(30) if cluster.node_for(k) == 1]
    warm2 = [k for k in range(30) if cluster.node_for(k) == 2]
    assert len(warm1) >= 2 and len(warm2) >= 1
    dep1 = b.insert(warm_bucket_key(1, warm1[0] % 64, 10_000), 1000)
    dep2 = b.insert(warm_bucket_key(2, warm2[0] % 64, 10_000), 1001)
    # client a keeps working independently (no new reads of node 0);
    # a *different* warmed bucket, so reverting dep1 never has to
    # touch a chain link the independent op wrote
    indep = a.insert(warm_bucket_key(1, warm1[1] % 64, 20_000), 531)
    probe = warm_bucket_key(0, victim % 64, poison_key + 1)
    return cluster, poison_op, (dep1, dep2), indep, probe


class TestDistributedRecovery:
    def test_cascading_recovery(self):
        cluster, poison_op, deps, indep, probe = _poisoned_cluster()
        node0 = cluster.nodes[0]
        detector = Detector()
        outcome = detector.observe(
            node0.machine, lambda: node0.lookup(probe)
        )
        assert not outcome.ok and outcome.fault.kind == "hang"

        reactor = DistributedReactor(cluster)

        def verify():
            assert node0.lookup(probe) == ABSENT

        report = reactor.mitigate(0, outcome.fault.iid, verify)
        assert report.recovered
        # the poisoned insert was discarded locally
        assert any(op.op_id == poison_op.op_id for op in report.discarded_ops)
        # its causal dependents on other nodes were cascaded
        cascaded_ids = {op.op_id for op in report.cascaded_ops}
        assert deps[0].op_id in cascaded_ids
        assert deps[1].op_id in cascaded_ids
        # ...and are gone from their nodes
        assert cluster.nodes[deps[0].node].lookup(deps[0].key) == ABSENT
        # the independent concurrent op survived
        if indep.op_id not in cascaded_ids:
            assert cluster.nodes[indep.node].lookup(indep.key) == 531

    def test_no_cascade_without_dependents(self):
        cluster = Cluster(n_nodes=2, n_clients=1)
        client = ClusterClient(cluster, 0)
        client.insert(0, 1)
        reactor = DistributedReactor(cluster)
        # nothing discarded -> nothing cascades
        orphans = reactor._orphans_of([])
        assert orphans == []

    def test_dimension_mismatch_surfaces_through_mitigate(self):
        # a tampered (wrong-topology) clock in the oplog must fail the
        # cascade loudly, not silently truncate the comparison
        cluster, poison_op, deps, indep, probe = _poisoned_cluster()
        node0 = cluster.nodes[0]
        detector = Detector()
        outcome = detector.observe(
            node0.machine, lambda: node0.lookup(probe)
        )
        assert not outcome.ok
        deps[0].vc = deps[0].vc + (0,)
        reactor = DistributedReactor(cluster)
        with pytest.raises(ValueError, match="dimension mismatch"):
            reactor.mitigate(
                0, outcome.fault.iid, lambda: None
            )


class TestMixedTopologies:
    """Cascade correctness across cluster shapes (satellite: n_nodes in
    {2, 5} x n_clients in {1, 3}, cyclic chains, fixpoint)."""

    @pytest.mark.parametrize(
        "n_nodes,n_clients", [(2, 1), (2, 3), (5, 1), (5, 3)]
    )
    def test_synthetic_cascade_reaches_fixpoint(self, n_nodes, n_clients):
        cluster = Cluster(
            n_nodes=n_nodes, n_clients=n_clients,
            replication=min(2, n_nodes),
        )
        clients = [ClusterClient(cluster, i) for i in range(n_clients)]
        a = clients[0]
        for key in range(20):
            a.insert(key, 500 + key)
        # an op issued before the root is causally independent of it
        indep = clients[-1].insert(5000, 9)
        root = a.insert(1000, 1)
        chain = []
        key = 1000
        for i in range(4):
            c = clients[(i + 1) % n_clients]
            rec = c.derived_insert(key, key + 1)
            assert rec is not None
            chain.append(rec)
            key += 1

        reactor = DistributedReactor(cluster)
        first, last = root.spans[root.node]
        seqs = set(range(first, last + 1))
        discarded, cascaded, rounds = reactor.cascade_from(root.node, seqs)
        assert root in discarded
        cascaded_ids = {op.op_id for op in cascaded}
        assert {rec.op_id for rec in chain} <= cascaded_ids
        assert indep.op_id not in cascaded_ids
        assert rounds >= 1
        # fixpoint: a second pass over the same seqs finds no new orphans
        _, again, _ = reactor.cascade_from(root.node, seqs)
        assert again == []

    def test_cyclic_causal_chain_terminates(self):
        # derived writes ping-pong between two keys, overwriting each
        # other: the key-level dependency graph is cyclic, but the
        # op-level cascade still reaches a fixpoint in finite rounds
        cluster = Cluster(n_nodes=2, n_clients=2, replication=1)
        a = ClusterClient(cluster, 0)
        b = ClusterClient(cluster, 1)
        for key in range(10):
            a.insert(key, 500 + key)
        root = a.insert(100, 1)
        hops = []
        src, dst = 100, 101
        for i in range(6):
            c = b if i % 2 == 0 else a
            rec = c.derived_insert(src, dst)
            assert rec is not None
            hops.append(rec)
            src, dst = dst, src  # write back over the previous key
        reactor = DistributedReactor(cluster)
        first, last = root.spans[root.node]
        discarded, cascaded, rounds = reactor.cascade_from(
            root.node, set(range(first, last + 1))
        )
        assert root in discarded
        cascaded_ids = {op.op_id for op in cascaded}
        assert {rec.op_id for rec in hops} <= cascaded_ids
        assert rounds <= len(hops) + 1  # terminated, no infinite loop
