"""Crash-safety of the checkpoint log and its on-disk region.

Covers the hardening added for the injection sweep: per-version
checksums, structural validation with a typed error, quarantine of
corrupt bytes, the self-verifying v2 region format with its torn-tail /
bit-flip recovery loader, and the reverter's write-ahead intent journal.
"""

import json
import zlib

import pytest

from repro import faultinject
from repro.checkpoint.log import MAX_VERSIONS, CheckpointLog, version_crc
from repro.errors import CorruptLogError, InjectedCrash
from repro.faultinject import InjectionPlan, InjectionSpec
from repro.instrument.artifacts import (
    load_checkpoint_log,
    open_and_verify,
    save_checkpoint_log,
)
from repro.pmem.pool import PM_BASE
from repro.reactor.revert import IntentJournal

A = PM_BASE
B = PM_BASE + 64


#: the canonical record stream, replayable against any log instance
_STREAM_OPS = (
    lambda log: log.record_alloc(A, 4),
    lambda log: log.record_update(A, 2, [11, 22]),
    lambda log: log.record_tx_begin(1),
    lambda log: log.record_update(A, 2, [33, 44], tx_id=1),
    lambda log: log.record_tx_commit(1),
    lambda log: log.record_alloc(B, 4),
    lambda log: log.record_update(B, 3, [1, 2, 3]),
    lambda log: log.record_free(B, 4),
)


def _apply_stream(log: CheckpointLog) -> CheckpointLog:
    for op in _STREAM_OPS:
        op(log)
    return log


def _small_log() -> CheckpointLog:
    return _apply_stream(CheckpointLog())


# ----------------------------------------------------------------------
# checksums + quarantine
# ----------------------------------------------------------------------
def test_every_recorded_version_carries_a_valid_checksum():
    log = _small_log()
    assert log.verify_checksums() == []
    for entry in log.entries.values():
        for v in entry.versions:
            assert v.crc >= 0
            assert v.crc == version_crc(entry.address, v.seq, v.data,
                                        v.size, v.tx_id)


def test_bitflip_is_detected_and_quarantined_not_deserialized():
    log = _small_log()
    entry = log.entries[A]
    victim = entry.versions[-1]
    victim.data = (victim.data[0] ^ 0x100, victim.data[1])
    assert log.verify_checksums() == [(A, victim.seq)]
    quarantined = log.quarantine_corrupt()
    assert [(a, v.seq) for a, v in quarantined] == [(A, victim.seq)]
    # the corrupt version is out of the ring; the entry now reports
    # evicted history, so the reverter floors instead of trusting a hole
    assert victim.seq not in [v.seq for v in entry.versions]
    assert entry.history_evicted
    assert log.verify_checksums() == []
    assert log.quarantined and log.quarantined[0][1].seq == victim.seq


# ----------------------------------------------------------------------
# structural validation (rebuild_indexes raises a typed error)
# ----------------------------------------------------------------------
def test_rebuild_indexes_rejects_out_of_order_event_seqs():
    log = _small_log()
    log.events[0], log.events[1] = log.events[1], log.events[0]
    with pytest.raises(CorruptLogError, match="out of order"):
        log.rebuild_indexes()


def test_rebuild_indexes_rejects_seq_beyond_next_seq():
    log = _small_log()
    log.events[-1].seq = 999
    with pytest.raises(CorruptLogError, match="next_seq"):
        log.rebuild_indexes()


def test_rebuild_indexes_rejects_dangling_realloc_forward_link():
    log = _small_log()
    log.entries[A].new_entry = 0xDEAD_0000
    with pytest.raises(CorruptLogError, match="dangling realloc"):
        log.rebuild_indexes()


def test_rebuild_indexes_rejects_unreciprocated_realloc_link():
    log = _small_log()
    log.entries[A].new_entry = B  # B.old_entry does not point back
    with pytest.raises(CorruptLogError, match="dangling realloc"):
        log.rebuild_indexes()


def test_backward_realloc_link_may_dangle():
    # the pre-realloc incarnation may never have been persisted, so only
    # forward links are strict
    log = _small_log()
    log.link_realloc(0x7777_0000, B)
    log.rebuild_indexes()  # does not raise


def test_quarantine_repair_path_skips_validation_but_stays_sound():
    log = _small_log()
    entry = log.entries[B]
    entry.versions[0].data = (9, 9, 9)
    log.quarantine_corrupt()
    log.rebuild_indexes()  # validates fine after repair


# ----------------------------------------------------------------------
# v2 region format: round-trip, strict load, recovery load
# ----------------------------------------------------------------------
def _region_lines(path):
    with open(path) as f:
        return f.read().splitlines()


def test_v2_region_roundtrip(tmp_path):
    log = _small_log()
    path = str(tmp_path / "ckpt.jsonl")
    save_checkpoint_log(log, path)
    loaded = load_checkpoint_log(path)
    assert loaded.total_updates == log.total_updates
    assert loaded._next_seq == log._next_seq
    assert set(loaded.entries) == set(log.entries)
    for addr in log.entries:
        assert [v.seq for v in loaded.entries[addr].versions] == \
            [v.seq for v in log.entries[addr].versions]
        assert [v.data for v in loaded.entries[addr].versions] == \
            [v.data for v in log.entries[addr].versions]
    assert [ev.seq for ev in loaded.events] == [ev.seq for ev in log.events]
    assert loaded.tx_members == log.tx_members
    # a clean region verifies clean
    _log2, report = open_and_verify(path)
    assert report.clean


def test_strict_load_rejects_flipped_record_byte(tmp_path):
    log = _small_log()
    path = str(tmp_path / "ckpt.jsonl")
    save_checkpoint_log(log, path)
    lines = _region_lines(path)
    # flip a digit inside an entry record's data, keeping valid JSON
    victim = next(i for i, ln in enumerate(lines) if '"t": "entry"' in ln)
    lines[victim] = lines[victim].replace('"data": [11,', '"data": [13,', 1)
    with open(path, "w") as f:
        f.write("\n".join(lines) + "\n")
    with pytest.raises(CorruptLogError):
        load_checkpoint_log(path)
    # the recovery loader quarantines the record instead
    loaded, report = open_and_verify(path)
    assert not report.clean
    assert report.quarantined_records == 1
    assert loaded.entries  # the intact entries survived


def test_strict_load_rejects_missing_commit_record(tmp_path):
    log = _small_log()
    path = str(tmp_path / "ckpt.jsonl")
    save_checkpoint_log(log, path)
    lines = _region_lines(path)
    with open(path, "w") as f:
        f.write("\n".join(lines[:-1]) + "\n")  # drop the commit
    with pytest.raises(CorruptLogError):
        load_checkpoint_log(path)
    _loaded, report = open_and_verify(path)
    assert report.missing_commit


def test_open_and_verify_truncates_torn_tail(tmp_path):
    log = _small_log()
    path = str(tmp_path / "ckpt.jsonl")
    save_checkpoint_log(log, path)
    lines = _region_lines(path)
    # the writer died mid-append: half a record, no commit
    torn = lines[:-1] + [lines[-1][: len(lines[-1]) // 2]]
    with open(path, "w") as f:
        f.write("\n".join(torn) + "\n")
    loaded, report = open_and_verify(path)
    assert report.truncated_records >= 1
    assert report.missing_commit
    loaded.rebuild_indexes()  # survivors are structurally valid
    assert loaded.entries


def test_open_and_verify_quarantines_checksum_failing_version(tmp_path):
    log = _small_log()
    entry = log.entries[A]
    victim = entry.versions[-1]
    victim.data = (victim.data[0] ^ 1, victim.data[1])  # corrupt pre-save
    path = str(tmp_path / "ckpt.jsonl")
    save_checkpoint_log(log, path)
    loaded, report = open_and_verify(path)
    assert (A, victim.seq) in report.quarantined_versions
    assert victim.seq not in [v.seq for v in loaded.entries[A].versions]


def test_open_and_verify_requires_a_header(tmp_path):
    path = str(tmp_path / "junk.jsonl")
    with open(path, "w") as f:
        f.write("this is not a checkpoint region\n")
    with pytest.raises(CorruptLogError):
        open_and_verify(path)


def test_v1_single_dict_format_still_loads(tmp_path):
    log = _small_log()
    payload = {
        "max_versions": log.max_versions,
        "next_seq": log._next_seq,
        "total_updates": log.total_updates,
        "entries": [
            {
                "address": e.address,
                "max_versions": e.max_versions,
                "total_versions": e.total_versions,
                "old_entry": e.old_entry,
                "new_entry": e.new_entry,
                "versions": [
                    {"seq": v.seq, "data": list(v.data), "size": v.size,
                     "tx": v.tx_id}
                    for v in e.versions
                ],
            }
            for e in log.entries.values()
        ],
        "events": [
            {"seq": ev.seq, "kind": ev.kind, "addr": ev.addr,
             "nwords": ev.nwords, "tx": ev.tx_id}
            for ev in log.events
        ],
        "tx_members": {str(k): v for k, v in log.tx_members.items()},
    }
    path = str(tmp_path / "ckpt_v1.json")
    with open(path, "w") as f:
        json.dump(payload, f)
    loaded = load_checkpoint_log(path)
    assert loaded.total_updates == log.total_updates
    # seed-era versions carry no checksum and are skipped by the verifier
    assert all(v.crc == -1 for e in loaded.entries.values()
               for v in e.versions)
    assert loaded.verify_checksums() == []


# ----------------------------------------------------------------------
# crash at the staged-index merge (ckpt.index_merge)
# ----------------------------------------------------------------------
def test_crash_at_index_merge_leaves_staging_intact_and_retry_converges():
    reference = _apply_stream(CheckpointLog(staging_limit=1))  # eager oracle

    log = _apply_stream(CheckpointLog())  # default window: nothing merged yet
    staged_before = log._stage.tobytes()
    words_before = list(log._stage_words)
    plan = InjectionPlan([InjectionSpec("ckpt.index_merge", 1, "crash")])
    with faultinject.activate(plan):
        with pytest.raises(InjectedCrash):
            log.flush_staging()
        # the site fires before any mutation: the staging tail and every
        # index are exactly as they were
        assert log._stage.tobytes() == staged_before
        assert log._stage_words == words_before
        assert log._events == []
        assert log._entries == {}
        # the spec is one-shot, so the post-crash retry merges clean
        log.flush_staging()
    assert plan.all_fired
    assert log.structural_digest() == reference.structural_digest()


def test_crash_at_midstream_autoflush_rebuild_converges():
    reference = _apply_stream(CheckpointLog(staging_limit=1))

    # a two-record window auto-merges mid-stream; crash the second merge
    log = CheckpointLog(staging_limit=2)
    plan = InjectionPlan([InjectionSpec("ckpt.index_merge", 2, "crash")])
    crashes = 0
    with faultinject.activate(plan):
        for op in _STREAM_OPS:
            try:
                op(log)
            except InjectedCrash:
                # the record that tripped the merge was staged before the
                # site fired; recovery re-merges and the stream resumes
                crashes += 1
                log.rebuild_indexes()
    assert crashes == 1
    assert log.structural_digest() == reference.structural_digest()


def test_crash_recovered_merge_roundtrips_through_region(tmp_path):
    reference = _apply_stream(CheckpointLog(staging_limit=1))

    log = _apply_stream(CheckpointLog())
    plan = InjectionPlan([InjectionSpec("ckpt.index_merge", 1, "crash")])
    with faultinject.activate(plan):
        with pytest.raises(InjectedCrash):
            log.flush_staging()
        log.rebuild_indexes()  # the recovery entry point retries the merge
    path = str(tmp_path / "ckpt.jsonl")
    save_checkpoint_log(log, path)
    loaded, report = open_and_verify(path)
    assert report.clean
    loaded.rebuild_indexes()
    assert loaded.structural_digest() == reference.structural_digest()


# ----------------------------------------------------------------------
# intent journal
# ----------------------------------------------------------------------
def test_intent_journal_replays_from_file(tmp_path):
    path = str(tmp_path / "intents.jsonl")
    j = IntentJournal(path)
    j.begin(17, mode="rollback")
    j.commit(17, recovered=False)
    j.begin(9, mode="rollback")  # crash before commit: stays pending
    j2 = IntentJournal(path)
    assert j2.is_done(17)
    assert not j2.is_done(9)
    assert j2.status[9] == "pending"
    assert j2.done_cuts() == [17]


def test_intent_journal_tolerates_torn_tail(tmp_path):
    path = str(tmp_path / "intents.jsonl")
    j = IntentJournal(path)
    j.begin(5, mode="rollback")
    j.commit(5)
    with open(path, "a") as f:
        f.write('{"op": "begi')  # writer died mid-append
    j2 = IntentJournal(path)
    assert j2.done_cuts() == [5]
