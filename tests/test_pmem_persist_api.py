"""Tests for the libpmem-style convenience API (native persistence)."""

import pytest

from repro.errors import PoolError
from repro.pmem import persist as libpmem
from repro.pmem.pool import PM_BASE


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    libpmem._mapped.clear()


def test_map_file_creates_and_reopens():
    pool1 = libpmem.pmem_map_file("/pools/a", 256)
    pool1.durable_write(PM_BASE + 1, 7)
    pool2 = libpmem.pmem_map_file("/pools/a", 256)
    assert pool2 is pool1  # same mapping
    assert pool2.read(PM_BASE + 1) == 7


def test_map_file_size_mismatch_rejected():
    libpmem.pmem_map_file("/pools/a", 256)
    with pytest.raises(PoolError):
        libpmem.pmem_map_file("/pools/a", 512)


def test_unmap_drops_pool():
    libpmem.pmem_map_file("/pools/a", 256)
    libpmem.pmem_unmap("/pools/a")
    fresh = libpmem.pmem_map_file("/pools/a", 256)
    assert fresh.read(PM_BASE + 1) == 0


def test_persist_flush_drain():
    pool = libpmem.pmem_map_file("/pools/b", 256)
    pool.write(PM_BASE, 5)
    libpmem.pmem_flush(pool, PM_BASE, 1)
    pool.crash()
    assert pool.read(PM_BASE) == 0  # flushed but never drained

    pool.write(PM_BASE, 5)
    libpmem.pmem_flush(pool, PM_BASE, 1)
    libpmem.pmem_drain(pool)
    pool.crash()
    assert pool.read(PM_BASE) == 5

    pool.write(PM_BASE + 9, 6)
    libpmem.pmem_persist(pool, PM_BASE + 9, 1)
    pool.crash()
    assert pool.read(PM_BASE + 9) == 6


def test_memcpy_persist():
    pool = libpmem.pmem_map_file("/pools/c", 256)
    libpmem.pmem_memcpy_persist(pool, PM_BASE + 4, [1, 2, 3])
    pool.crash()
    assert pool.read_range(PM_BASE + 4, 3) == [1, 2, 3]
