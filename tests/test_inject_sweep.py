"""Injection-sweep integration tests (f9 under the crash supervisor).

The parametrized test is the issue's acceptance check in miniature: a
crash injected at *every* enumerable persist/checkpoint/reversion site
of f9's supervised mitigation must still end with a recovered,
poolcheck-clean, consistency-probed pool.  The convergence test pins the
stronger property: a mitigation crashed between reversion cuts and
re-run converges to the byte-identical durable image of an
uninterrupted run.
"""

import pytest

from repro.faultinject import InjectionPlan, InjectionSpec
from repro.harness.experiment import run_experiment
from repro.harness.inject_sweep import (
    DEFAULT_OPS,
    discover_sites,
    run_cell,
)

F9_PRE, F9_POST = DEFAULT_OPS["f9"]

# discovery is deterministic, so enumerate the parametrization at
# collection time: one crash cell per site family (first occurrence)
_F9_SITES = sorted(discover_sites("f9", "arthas-rb", seed=0)[0])


@pytest.mark.parametrize("site", _F9_SITES)
def test_f9_crash_at_every_site_family_recovers_consistent(site):
    cell = run_cell("f9", InjectionSpec(site, 1, "crash"),
                    solution="arthas-rb", seed=0)
    assert cell.fired, f"{site}: injection never fired"
    assert cell.recovered, f"{site}: mitigation did not recover"
    assert cell.pool_ok, f"{site}: poolcheck failed after recovery"
    assert cell.consistent is not False, \
        f"{site}: consistency probe found violations"
    assert cell.verified


def test_f9_torn_fence_and_bitflip_cells_verify():
    for spec in (InjectionSpec("pmem.fence", 1, "torn", seed=3),
                 InjectionSpec("ckpt.record_update", 1, "bitflip", seed=5)):
        cell = run_cell("f9", spec, solution="arthas-rb", seed=0)
        assert cell.verified, f"{spec.label()}: {cell.notes}"


def test_crash_between_cuts_converges_to_uninterrupted_state():
    def digest_of(plan):
        result = run_experiment(
            "f9", "arthas-rb", seed=0, pre_ops=F9_PRE, post_ops=F9_POST,
            supervised=True, inject_plan=plan,
        )
        run = result.mitigation
        assert run is not None and run.recovered
        return run.ladder["verification"]["pool_digest"]

    baseline = digest_of(None)
    crashed = digest_of(InjectionPlan([InjectionSpec("revert.cut", 1)]))
    assert crashed == baseline, \
        "crashed-and-resumed mitigation diverged from the uninterrupted run"


def test_unreachable_site_cell_reports_unfired_not_verified():
    cell = run_cell("f9", InjectionSpec("pmem.api.pmem_persist", 1, "crash"),
                    solution="arthas-rb", seed=0)
    assert not cell.fired
    assert not cell.verified
    assert "never reached" in cell.notes
