"""The incremental probe engine vs the full-restore snapshot oracle.

``Reverter.mitigate_bisect`` moves between probe points with dirty-word
epoch deltas (``engine="incremental"``); the seed behaviour — full pool
restore + prefix replay per probe — survives as ``engine="snapshot"``
and serves as the oracle here.  The two must be *indistinguishable* from
outside: identical MitigationResult fields and byte-identical durable
state, across the synthetic bench states and all twelve real fault
experiments.

The perf test pins the reason the incremental engine exists: restoring a
50k-word pool by rewriting only the dirty words must beat rewriting the
whole image.
"""

import time

import pytest

from repro.harness.experiment import run_experiment
from repro.harness.hotpaths import build_synthetic_state
from repro.pmem.snapshot import restore_snapshot, take_snapshot
from repro.reactor.revert import PROBE_ENGINES, Reverter, _NullClock

FIDS = [f"f{i}" for i in range(1, 13)]


# ----------------------------------------------------------------------
# equivalence: every observable of the two engines matches
# ----------------------------------------------------------------------
def _mitigate(engine, n_updates=800, seed=0, **kwargs):
    state = build_synthetic_state(n_updates, seed=seed)
    reverter = Reverter(
        state.log, state.pool, state.allocator, state.reexec(), **kwargs
    )
    result = reverter.mitigate_bisect(state.make_plan(), engine=engine)
    return state, result


@pytest.mark.parametrize("seed", [0, 7, 11])
def test_engines_equivalent_on_synthetic_state(seed):
    images, results = [], []
    for engine in ("incremental", "snapshot"):
        state, result = _mitigate(engine, seed=seed)
        assert result.recovered, engine
        images.append(state.durable_image())
        results.append(result)
    a, b = results
    assert images[0] == images[1]
    assert (a.attempts, a.reverted_seqs, a.recovered, a.notes) == (
        b.attempts, b.reverted_seqs, b.recovered, b.notes
    )


@pytest.mark.parametrize("fid", FIDS)
def test_engines_equivalent_on_real_faults(fid):
    """Both engines end every real experiment in the same final state.

    ``pool_digest`` fingerprints the durable image + allocator metadata,
    so digest equality is byte-level state equality.  The consistency
    probe is skipped: the digest is taken before it and the probe roughly
    doubles the runtime.
    """
    runs = [
        run_experiment(
            fid, "arthas-bi", seed=0, consistency_probe=False,
            bisect_engine=engine,
        ).mitigation
        for engine in ("incremental", "snapshot")
    ]
    a, b = runs
    assert a is not None and b is not None
    assert a.recovered and b.recovered
    assert a.pool_digest == b.pool_digest
    assert (a.attempts, a.reverted_updates, a.notes) == (
        b.attempts, b.reverted_updates, b.notes
    )


def test_unknown_engine_rejected():
    state = build_synthetic_state(200, seed=0)
    reverter = Reverter(
        state.log, state.pool, state.allocator, state.reexec()
    )
    with pytest.raises(ValueError):
        reverter.mitigate_bisect(state.make_plan(), engine="nope")


# ----------------------------------------------------------------------
# memoization: no probe point is ever re-executed
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", sorted(PROBE_ENGINES))
def test_bisect_reexecutes_each_probe_point_once(engine):
    state = build_synthetic_state(800, seed=0)
    inner = state.reexec()
    calls = []

    def counting_reexec():
        calls.append(1)
        return inner()

    reverter = Reverter(
        state.log, state.pool, state.allocator, counting_reexec
    )
    result = reverter.mitigate_bisect(state.make_plan(), engine=engine)
    assert result.recovered
    # one re-execution per attempt; the final probe(best) that lands the
    # pool on the winning state is a memo hit and must not re-execute
    assert len(calls) == result.attempts


# ----------------------------------------------------------------------
# the duration accounting bug (the seed's literal `+ 0.0`)
# ----------------------------------------------------------------------
def test_duration_includes_reexec_delays():
    state = build_synthetic_state(600, seed=0)
    clock = _NullClock()
    reverter = Reverter(
        state.log, state.pool, state.allocator, state.reexec(),
        clock=clock, reexec_delay=lambda: 4.0,
    )
    result = reverter.mitigate_bisect(state.make_plan())
    assert result.recovered
    # every attempt advanced the clock by the re-execution delay; the
    # seed charged the clock but added a literal 0.0 to the result, so
    # Fig. 8 durations missed the dominant term entirely
    assert result.duration_seconds >= 4.0 * result.attempts
    assert result.duration_seconds == pytest.approx(clock.now)


def test_duration_covers_only_own_run_on_shared_clock():
    state = build_synthetic_state(600, seed=0)
    clock = _NullClock()
    clock.advance(1000.0)  # a previous strategy already burned time
    reverter = Reverter(
        state.log, state.pool, state.allocator, state.reexec(),
        clock=clock, reexec_delay=lambda: 4.0,
        timeout_seconds=10_000.0,
    )
    start = clock.now
    result = reverter.mitigate_bisect(state.make_plan())
    assert result.recovered
    assert result.duration_seconds == pytest.approx(clock.now - start)
    assert result.duration_seconds < 1000.0


# ----------------------------------------------------------------------
# perf: dirty-word restore beats the full-image restore
# ----------------------------------------------------------------------
def test_dirty_word_restore_beats_full_restore_at_scale():
    """At a 50k-word image with a ~100-word delta, epoch undo must win.

    The margin demanded (2x) is tiny against the observed ratio
    (hundreds of x) — this trips only if someone reimplements epoch undo
    as a full-image rewrite.
    """
    from repro.pmem.pool import PM_BASE, PMPool

    n_words, n_dirty, reps = 50_000, 100, 20
    pool = PMPool(n_words + 1024, name="perfpin")
    for i in range(n_words):
        pool.durable_write(PM_BASE + i, i + 1)

    snap = take_snapshot(pool)
    t0 = time.perf_counter()
    for _ in range(reps):
        for i in range(n_dirty):
            pool.durable_write(PM_BASE + i * 7, 0xBEEF)
        restore_snapshot(pool, snap)
    full_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(reps):
        tok = pool.open_epoch()
        for i in range(n_dirty):
            pool.durable_write(PM_BASE + i * 7, 0xBEEF)
        pool.epoch_undo(tok)
    epoch_seconds = time.perf_counter() - t0

    assert pool.durable_items() == snap.durable
    assert epoch_seconds * 2 < full_seconds, (
        f"epoch undo {epoch_seconds:.4f}s vs full restore "
        f"{full_seconds:.4f}s — dirty-word restore regressed"
    )
