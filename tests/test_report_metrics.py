"""Tests for the report renderers and metric helpers."""

from repro.harness.metrics import fraction, geo_mean, mean, median, pct
from repro.harness.report import render_bars, render_grouped_bars, render_table
from repro.harness.simclock import ReexecDelay, SimClock


class TestMetrics:
    def test_mean_median(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5
        assert median([]) == 0.0

    def test_geo_mean(self):
        assert geo_mean([1, 100]) == 10.0
        assert geo_mean([]) == 0.0

    def test_fraction(self):
        assert fraction(10, 10) == "Y"
        assert fraction(0, 10) == "N"
        assert fraction(4, 10) == "4/10"
        assert fraction(0, 0) == "n/a"

    def test_pct(self):
        assert pct(3.14159) == "3.1%"


class TestReport:
    def test_table_renders_all_rows(self):
        text = render_table(
            "Table X", ["a", "bb"], [["1", "2"], ["333", "4"]], note="hi"
        )
        assert "Table X" in text
        assert "333" in text
        assert "note: hi" in text

    def test_bars_scale_to_peak(self):
        text = render_bars("Fig", {"x": 10.0, "y": 5.0}, unit="s")
        lines = text.splitlines()
        x_bar = next(l for l in lines if l.startswith("x"))
        y_bar = next(l for l in lines if l.startswith("y"))
        assert x_bar.count("#") > y_bar.count("#")

    def test_bars_empty(self):
        assert "empty" in render_bars("Fig", {})

    def test_grouped_bars(self):
        text = render_grouped_bars(
            "Fig", ["g1", "g2"], {"s1": {"g1": 1.0}, "s2": {"g1": 2.0, "g2": 3.0}}
        )
        assert "g1 s1" in text
        assert "n/a" in text  # s1 has no g2 value


class TestClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance(2.5)
        clock.advance(1.5)
        assert clock.now == 4.0

    def test_negative_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_reexec_delay_range_and_determinism(self):
        d1 = ReexecDelay(seed=3)
        d2 = ReexecDelay(seed=3)
        values = [d1() for _ in range(20)]
        assert values == [d2() for _ in range(20)]
        assert all(3.0 <= v <= 5.0 for v in values)
