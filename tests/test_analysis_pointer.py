"""Tests for the Andersen points-to analysis and PM classification."""

from repro.analysis import analyze_module
from repro.analysis.pointer import ROOT_SITE, TOP, analyze_pointers
from repro.analysis.pmvars import classify_pm
from repro.lang.compiler import compile_module


def _analyze(src, structs=None):
    module = compile_module("t", src, structs=structs or {})
    return module, analyze_pointers(module)


def test_alloc_creates_pm_site():
    module, pts = _analyze("def f():\n    p = pm_alloc(4)\n    return p\n")
    locs = pts.pts_of("f", "p")
    assert len(locs) == 1
    site, off = next(iter(locs))
    assert off == 0
    assert pts.site_space[site] == "pm"
    assert pts.is_pm_pointer("f", "p")


def test_volatile_alloc_is_not_pm():
    module, pts = _analyze("def f():\n    v = valloc(4)\n    return v\n")
    assert not pts.is_pm_pointer("f", "v")


def test_copy_propagates_points_to():
    module, pts = _analyze(
        "def f():\n    p = pm_alloc(4)\n    q = p\n    return q\n"
    )
    assert pts.pts_of("f", "q") == pts.pts_of("f", "p")


def test_field_sensitivity():
    src = (
        'def f():\n'
        '    p = pm_alloc(sizeof("pair"))\n'
        '    a = addr(p.pr_a)\n'
        '    b = addr(p.pr_b)\n'
        '    return a + b\n'
    )
    module, pts = _analyze(src, structs={"pair": ["pr_a", "pr_b"]})
    la = pts.pts_of("f", "a")
    lb = pts.pts_of("f", "b")
    assert {off for _s, off in la} == {0}
    assert {off for _s, off in lb} == {1}


def test_indexed_gep_collapses_to_top():
    src = "def f(i):\n    p = pm_alloc(8)\n    q = addr(p[i])\n    return q\n"
    module, pts = _analyze(src)
    assert {off for _s, off in pts.pts_of("f", "q")} == {TOP}


def test_pointer_arithmetic_weakens_to_top():
    src = "def f():\n    p = pm_alloc(8)\n    q = p + 3\n    return q\n"
    module, pts = _analyze(src)
    assert {off for _s, off in pts.pts_of("f", "q")} == {TOP}
    assert pts.is_pm_pointer("f", "q")


def test_heap_flow_through_store_load():
    src = (
        'def f():\n'
        '    box = pm_alloc(sizeof("box"))\n'
        '    inner = pm_alloc(2)\n'
        '    box.bx_ptr = inner\n'
        '    out = box.bx_ptr\n'
        '    return out\n'
    )
    module, pts = _analyze(src, structs={"box": ["bx_ptr"]})
    inner = pts.pts_of("f", "inner")
    out = pts.pts_of("f", "out")
    assert inner <= out


def test_root_cell_flow():
    src = (
        "def store():\n"
        "    p = pm_alloc(4)\n"
        "    set_root(p)\n"
        "    return p\n"
        "def load():\n"
        "    return get_root()\n"
    )
    module, pts = _analyze(src)
    assert pts.pts_of("store", "p") <= pts.pts_of("load", "%t2") | pts.pts_of(
        "load", "%t1"
    )
    assert pts.is_pm_pointer("load", next(
        i.dst for i in module.functions["load"].instructions() if i.op == "getroot"
    ))


def test_interprocedural_param_and_return_flow():
    src = (
        "def make():\n    return pm_alloc(4)\n"
        "def use(p):\n    return p[0]\n"
        "def main():\n"
        "    q = make()\n"
        "    return use(q)\n"
    )
    module, pts = _analyze(src)
    assert pts.is_pm_pointer("main", "q")
    assert pts.is_pm_pointer("use", "p")


def test_load_store_footprints_recorded():
    src = (
        "def f():\n"
        "    p = pm_alloc(2)\n"
        "    p[0] = 1\n"
        "    return p[0]\n"
    )
    module, pts = _analyze(src)
    stores = [i for i in module.instructions() if i.op == "store"]
    loads = [i for i in module.instructions() if i.op == "load"]
    assert all(s.iid in pts.store_locs for s in stores)
    assert all(l.iid in pts.load_locs for l in loads)


def test_pm_classification_covers_accesses(kv_module):
    pts = analyze_pointers(kv_module)
    pm = classify_pm(kv_module, pts)
    # every store through a node pointer must be classified PM
    put = kv_module.functions["kv_put"]
    stores = [i for i in put.instructions() if i.op == "store"]
    assert stores
    assert all(pm.is_pm_instr(s.iid) for s in stores)
    # PM registers include the root and node pointers
    assert pm.is_pm_register("kv_put", "node")
    assert pm.is_pm_register("kv_get", "node")


def test_solver_terminates_quickly(kv_module):
    pts = analyze_pointers(kv_module)
    assert pts.iterations < 50
