"""The fused superinstruction VM engine vs the table-dispatch oracle.

``Machine(vm_engine="fused")`` — the default — compiles straight-line
runs of fusable opcodes into Python closures and elides single-use
temporaries into their consumers; ``vm_engine="table"`` is the original
per-step dict-dispatch interpreter, kept as the oracle (mirroring the
``PROBE_ENGINES`` pattern).  The two must be indistinguishable from
outside: identical results, identical ``steps_executed``, identical
fault attribution (trap type, iid, step of occurrence), identical
``HangTrap`` budget accounting — across compute kernels, trap programs
and all twelve real fault experiments.
"""

import pytest

from repro.errors import ArithmeticTrap, HangTrap, SegfaultTrap
from repro.harness.experiment import run_experiment
from repro.lang.compiler import compile_module
from repro.lang.fuse import VM_ENGINES
from repro.lang.interp import Machine

FIDS = [f"f{i}" for i in range(1, 13)]

_SPIN_SRC = """
def spin(n):
    s = 0
    for i in range(n):
        s = s + i * 3
        s = s ^ (i << 1)
        if s > 1000000:
            s = s % 65536
    return s
"""


def _run_both(src, fname, *args, step_budget=None):
    module = compile_module("t", src)
    outcomes = {}
    for engine in VM_ENGINES:
        machine = Machine(module, vm_engine=engine)
        result = machine.call(fname, *args, step_budget=step_budget)
        outcomes[engine] = (result, machine.steps_executed)
    return outcomes


def _trap_both(src, fname, trap_cls, *args):
    """Both engines trap identically: kind, iid and step of occurrence."""
    module = compile_module("t", src)
    observed = {}
    for engine in VM_ENGINES:
        machine = Machine(module, vm_engine=engine)
        with pytest.raises(trap_cls):
            machine.call(fname, *args)
        fault = machine.last_fault
        assert fault is not None, engine
        observed[engine] = (fault.kind, fault.iid, machine.steps_executed)
    assert observed["table"] == observed["fused"], observed
    return observed["fused"]


# ----------------------------------------------------------------------
# result + step parity
# ----------------------------------------------------------------------
def test_result_and_step_parity_on_compute_loop():
    outcomes = _run_both(_SPIN_SRC, "spin", 3000)
    assert outcomes["table"] == outcomes["fused"]
    assert outcomes["fused"][1] > 3000  # actually ran the loop


def test_parity_with_pm_loads_and_stores():
    src = """
def f(n):
    p = pm_alloc(8)
    s = 0
    for i in range(n):
        p[i % 8] = s + i
        persist(p + (i % 8), 1)
        s = s + p[i % 8]
    return s
"""
    outcomes = _run_both(src, "f", 200)
    assert outcomes["table"] == outcomes["fused"]


def test_parity_across_calls_and_branch_mix():
    src = """
def helper(a, b):
    if a > b:
        return a - b
    return b - a

def f(n):
    s = 0
    for i in range(n):
        s = s + helper(i, s % 97)
    return s
"""
    outcomes = _run_both(src, "f", 150)
    assert outcomes["table"] == outcomes["fused"]


# ----------------------------------------------------------------------
# exact fault attribution inside fused segments
# ----------------------------------------------------------------------
def test_segfault_in_fused_chain_attributes_the_load():
    # const + gep + load all sit in one fused segment; the trap must
    # carry the *load*'s iid and fire on the same step as the oracle
    src = "def f():\n    p = 12345\n    return p[2]\n"
    kind, _iid, _steps = _trap_both(src, "f", SegfaultTrap)
    assert kind == "segfault"


def test_store_segfault_parity():
    src = "def f():\n    p = 999999999\n    p[0] = 7\n    return 0\n"
    _trap_both(src, "f", SegfaultTrap)


def test_division_by_zero_mid_loop_parity():
    # the ZeroDivisionError raised by raw-coded arithmetic falls back to
    # table re-execution for exact ArithmeticTrap conversion
    src = """
def f(a):
    s = 0
    for i in range(5):
        s = s + 10 // a
    return s
"""
    _trap_both(src, "f", ArithmeticTrap, 0)


# ----------------------------------------------------------------------
# budget accounting: HangTrap on exactly the same step
# ----------------------------------------------------------------------
@pytest.mark.parametrize("budget", [7, 23, 50, 101])
def test_hang_budget_parity(budget):
    module = compile_module("t", _SPIN_SRC)
    steps = {}
    for engine in VM_ENGINES:
        machine = Machine(module, vm_engine=engine)
        with pytest.raises(HangTrap):
            machine.call("spin", 10_000, step_budget=budget)
        steps[engine] = machine.steps_executed
    assert steps["table"] == steps["fused"]


# ----------------------------------------------------------------------
# engine selection plumbing
# ----------------------------------------------------------------------
def test_unknown_vm_engine_rejected():
    module = compile_module("t", "def f():\n    return 1\n")
    with pytest.raises(ValueError):
        Machine(module, vm_engine="nope")


def test_default_engine_is_fused():
    module = compile_module("t", "def f():\n    return 1\n")
    assert Machine(module).vm_engine == "fused"


# ----------------------------------------------------------------------
# equivalence on the real fault experiments
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fid", FIDS)
def test_engines_equivalent_on_real_faults(fid):
    """Both engines end every real experiment in the same final state.

    ``pool_digest`` fingerprints the durable image + allocator metadata,
    so digest equality is byte-level state equality.  The consistency
    probe is skipped: the digest is taken before it and the probe
    roughly doubles the runtime.
    """
    runs = [
        run_experiment(
            fid, "arthas-bi", seed=0, consistency_probe=False,
            vm_engine=engine,
        ).mitigation
        for engine in ("fused", "table")
    ]
    a, b = runs
    assert a is not None and b is not None
    assert a.recovered and b.recovered
    assert a.pool_digest == b.pool_digest
    assert (a.attempts, a.reverted_updates, a.notes) == (
        b.attempts, b.reverted_updates, b.notes
    )
