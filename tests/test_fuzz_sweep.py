"""The crash-consistency fuzzer and its injection-layer foundations.

Four layers gate the f13+ fault families:

* **plan soundness** — duplicate (site, occurrence) specs raise instead
  of silently making ``all_fired`` unreachable; ``observe`` consumes
  specs so the coverage signal is exact;
* **skip semantics** — ``skip-flush`` elides the staging (the store
  stays cache-only and dies at power loss), ``skip-fence`` elides the
  drain (staged lines survive until a *later* fence persists them) —
  the WITCHER missing-flush / persist-ordering classes;
* **invariant probe** — a quiescent guest with skipped persists shows
  at-risk words, a clean one does not;
* **determinism** — the same sweep seed reproduces byte-identical
  registry entries, the contract behind the committed report and the
  CI drift check.
"""

from __future__ import annotations

import pytest

from repro import faultinject
from repro.faultinject import (
    FUZZ_KINDS,
    FUZZ_SITES,
    InjectionPlan,
    InjectionSpec,
    _sample_occurrences,
    kind_applies,
)
from repro.faults.fuzzed import FUZZED_FAULT_SPECS, FuzzedScenario
from repro.harness.fuzz_sweep import (
    check_against,
    render_registry_block,
    run_fuzz_sweep,
)
from repro.pmem.persist import probe_persistence
from repro.pmem.pool import PM_BASE, PMPool


# ----------------------------------------------------------------------
# InjectionPlan: duplicate rejection + consume semantics (the bugfix)
# ----------------------------------------------------------------------
class TestInjectionPlanConsume:
    def test_duplicate_site_occurrence_raises(self):
        specs = [
            InjectionSpec("pmem.flush", 3, "crash"),
            InjectionSpec("pmem.flush", 3, "torn"),
        ]
        with pytest.raises(ValueError, match="duplicate injection spec"):
            InjectionPlan(specs)

    def test_same_site_distinct_occurrences_allowed(self):
        plan = InjectionPlan([
            InjectionSpec("pmem.flush", 1, "crash"),
            InjectionSpec("pmem.flush", 2, "crash"),
        ])
        assert not plan.all_fired

    def test_observe_consumes_and_all_fired_becomes_true(self):
        plan = InjectionPlan([
            InjectionSpec("a", 2, "crash"),
            InjectionSpec("b", 1, "crash"),
        ])
        assert plan.observe("a") is None       # occurrence 1: no spec
        assert not plan.all_fired
        assert plan.observe("b").site == "b"
        assert plan.observe("a").occurrence == 2
        assert plan.all_fired
        assert [s.site for s in plan.fired] == ["b", "a"]

    def test_unreached_spec_keeps_all_fired_false(self):
        plan = InjectionPlan([InjectionSpec("a", 99, "crash")])
        for _ in range(5):
            plan.observe("a")
        assert not plan.all_fired

    def test_record_mode_counts_but_never_consumes(self):
        plan = InjectionPlan(record=True)
        assert plan.observe("x") is None
        assert plan.observe("x") is None
        assert plan.counts == {"x": 2}
        assert plan.all_fired  # vacuously: nothing pending


# ----------------------------------------------------------------------
# _sample_occurrences edge cases
# ----------------------------------------------------------------------
class TestSampleOccurrences:
    def test_zero_and_negative_counts_empty(self):
        assert _sample_occurrences(0, 3) == []
        assert _sample_occurrences(-4, 3) == []

    def test_n_equal_to_cap_returns_all(self):
        assert _sample_occurrences(3, 3) == [1, 2, 3]

    def test_nonpositive_cap_means_exhaustive(self):
        assert _sample_occurrences(5, 0) == [1, 2, 3, 4, 5]

    def test_cap_one_pins_first(self):
        assert _sample_occurrences(100, 1) == [1]

    def test_endpoints_pinned_and_sorted(self):
        occs = _sample_occurrences(1000, 5)
        assert occs[0] == 1 and occs[-1] == 1000
        assert occs == sorted(occs) and len(occs) == 5

    def test_rounding_collisions_shrink_not_duplicate(self):
        # n=3, cap=2 -> {1, 3}; n=2, cap=3 -> all of [1, 2]
        assert _sample_occurrences(3, 2) == [1, 3]
        occs = _sample_occurrences(2, 3)
        assert occs == [1, 2]
        assert len(set(occs)) == len(occs)


# ----------------------------------------------------------------------
# skip-flush / skip-fence pool semantics + the invariant probe
# ----------------------------------------------------------------------
def _pool_with_plan(plan):
    pool = PMPool(size_words=64)
    cm = faultinject.activate(plan)
    cm.__enter__()
    return pool, cm


def test_skip_flush_loses_store_at_crash():
    plan = InjectionPlan([InjectionSpec("pmem.flush", 1, "skip-flush")])
    pool, cm = _pool_with_plan(plan)
    try:
        pool.write(PM_BASE, 42)
        pool.flush(PM_BASE, 1)   # elided
        pool.fence()             # nothing staged: nothing to persist
        probe = probe_persistence(pool)
        assert not probe.consistent and probe.at_risk_words == 1
        assert pool.read(PM_BASE) == 42   # reads still see the cache
        pool.crash()
        assert pool.read(PM_BASE) == 0    # gone after power loss
        assert pool.stats["skipped_flushes"] == 1
    finally:
        cm.__exit__(None, None, None)


def test_skip_fence_defers_until_later_fence():
    plan = InjectionPlan([InjectionSpec("pmem.fence", 1, "skip-fence")])
    pool, cm = _pool_with_plan(plan)
    try:
        pool.write(PM_BASE, 7)
        pool.flush(PM_BASE, 1)
        pool.fence()             # elided: stays staged
        probe = probe_persistence(pool)
        assert probe.staged_words == 1 and not probe.consistent
        pool.fence()             # a later fence drains the backlog
        assert probe_persistence(pool).consistent
        pool.crash()
        assert pool.read(PM_BASE) == 7    # made it just in time
        assert pool.stats["skipped_fences"] == 1
    finally:
        cm.__exit__(None, None, None)


def test_tail_skip_fence_loses_data_at_crash():
    plan = InjectionPlan([InjectionSpec("pmem.fence", 1, "skip-fence")])
    pool, cm = _pool_with_plan(plan)
    try:
        pool.write(PM_BASE, 9)
        pool.flush(PM_BASE, 1)
        pool.fence()             # elided, and no fence follows
        pool.crash()
        assert pool.read(PM_BASE) == 0
    finally:
        cm.__exit__(None, None, None)


def test_clean_quiescent_pool_probe_consistent():
    pool = PMPool(size_words=64)
    pool.write(PM_BASE, 1)
    pool.flush(PM_BASE, 1)
    pool.fence()
    probe = probe_persistence(pool)
    assert probe.consistent
    assert probe.at_risk_words == 0 and probe.pending_ranges == 0


def test_skip_kinds_apply_only_to_persistence_sites():
    assert kind_applies("pmem.flush", "skip-flush")
    assert kind_applies("pmem.api.pmem_persist", "skip-flush")
    assert not kind_applies("pmem.fence", "skip-flush")
    assert kind_applies("pmem.fence", "skip-fence")
    assert kind_applies("pmem.api.pmem_drain", "skip-fence")
    assert not kind_applies("pmem.flush", "skip-fence")
    assert not kind_applies("ckpt.record_update", "skip-flush")
    for site in FUZZ_SITES:
        assert any(kind_applies(site, k) for k in FUZZ_KINDS)


# ----------------------------------------------------------------------
# fuzzer determinism + drift contract
# ----------------------------------------------------------------------
class TestFuzzerDeterminism:
    def test_same_seed_yields_byte_identical_registry_entries(self):
        # the committed sweep's seed: memcached discovers within the
        # quick-trial prefix, so this stays cheap
        kwargs = dict(systems=["memcached"], trials=10, sweep_seed=2026)
        a = run_fuzz_sweep(**kwargs)
        b = run_fuzz_sweep(**kwargs)
        assert a.discoveries, "the sweep seed must rediscover memcached"
        assert render_registry_block(a.discoveries) == render_registry_block(
            b.discoveries
        )
        assert [d.to_json() for d in a.discoveries] == [
            d.to_json() for d in b.discoveries
        ]

    def test_check_against_flags_seed_and_signature_drift(self):
        report = run_fuzz_sweep(systems=["memcached"], trials=2, sweep_seed=7)
        committed = report.to_json()
        assert check_against(report, committed) == []
        assert check_against(report, {**committed, "sweep_seed": 1})
        tampered = {**committed, "quick_signatures": ["memcached|x|y"]}
        assert check_against(report, tampered)

    def test_committed_entries_rebuild_as_scenarios(self):
        from repro.faults.registry import ALL_SCENARIOS, scenario_by_id

        fuzzed = [s for s in ALL_SCENARIOS if isinstance(s, FuzzedScenario)]
        assert len(fuzzed) == len(FUZZED_FAULT_SPECS) >= 6
        for entry in FUZZED_FAULT_SPECS:
            scenario = scenario_by_id(str(entry["fid"]))
            assert scenario.system == entry["system"]
            assert scenario.family == entry["family"]
            assert scenario.specs  # never an empty reproducer
