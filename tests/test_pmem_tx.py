"""Tests for undo-log transactions."""

import pytest

from repro.errors import TransactionError
from repro.pmem.pool import PM_BASE
from repro.pmem.tx import TransactionManager


def test_commit_persists_added_ranges(pool, txman):
    txman.begin()
    txman.add(PM_BASE + 4, 2)
    pool.write(PM_BASE + 4, 7)
    pool.write(PM_BASE + 5, 8)
    txman.commit()
    pool.crash()
    assert pool.read(PM_BASE + 4) == 7
    assert pool.read(PM_BASE + 5) == 8


def test_abort_restores_pre_tx_values(pool, txman):
    pool.write(PM_BASE + 4, 1)
    pool.persist(PM_BASE + 4, 1)
    txman.begin()
    txman.add(PM_BASE + 4, 1)
    pool.write(PM_BASE + 4, 99)
    txman.abort()
    assert pool.read(PM_BASE + 4) == 1
    assert pool.durable_read(PM_BASE + 4) == 1


def test_crash_mid_tx_loses_writes(pool, txman):
    txman.begin()
    txman.add(PM_BASE + 4, 1)
    pool.write(PM_BASE + 4, 99)
    pool.crash()
    txman.reset()
    assert pool.read(PM_BASE + 4) == 0


def test_nested_begin_flattens(pool, txman):
    txman.begin()
    txman.begin()
    txman.add(PM_BASE, 1)
    pool.write(PM_BASE, 5)
    txman.commit()  # inner: must not persist yet
    pool.crash()
    assert pool.read(PM_BASE) == 0


def test_nested_outer_commit_persists(pool, txman):
    txman.begin()
    txman.begin()
    txman.add(PM_BASE, 1)
    pool.write(PM_BASE, 5)
    txman.commit()
    txman.commit()
    pool.crash()
    assert pool.read(PM_BASE) == 5


def test_per_context_transactions_are_independent(pool, txman):
    t1 = txman.begin(ctx=1)
    t2 = txman.begin(ctx=2)
    assert t1 != t2
    txman.add(PM_BASE, 1, ctx=1)
    pool.write(PM_BASE, 5)
    txman.add(PM_BASE + 1, 1, ctx=2)
    pool.write(PM_BASE + 1, 6)
    txman.commit(ctx=1)
    assert txman.active(ctx=2)
    assert not txman.active(ctx=1)
    txman.commit(ctx=2)
    pool.crash()
    assert pool.read(PM_BASE) == 5
    assert pool.read(PM_BASE + 1) == 6


def test_misuse_raises(txman):
    with pytest.raises(TransactionError):
        txman.add(PM_BASE, 1)
    with pytest.raises(TransactionError):
        txman.commit()
    with pytest.raises(TransactionError):
        txman.abort()


def test_commit_hooks_see_tx_id_and_ranges(pool, txman):
    events = []
    txman.add_begin_hook(lambda t: events.append(("begin", t)))
    txman.add_commit_hook(lambda t, r: events.append(("commit", t, r)))
    tid = txman.begin()
    txman.add(PM_BASE, 2)
    txman.commit()
    assert events == [("begin", tid), ("commit", tid, [(PM_BASE, 2)])]


def test_persist_hook_sees_committing_tx_id(pool, txman):
    observed = []
    pool.add_persist_hook(
        lambda a, n, v, t: observed.append((t, txman.current_tx_id))
    )
    tid = txman.begin()
    txman.add(PM_BASE, 1)
    pool.write(PM_BASE, 1)
    txman.commit()
    assert observed == [("tx-commit", tid)]
    assert txman.current_tx_id == 0


def test_abort_unwinds_overlapping_adds_in_reverse(pool, txman):
    pool.write(PM_BASE, 1)
    pool.persist(PM_BASE, 1)
    txman.begin()
    txman.add(PM_BASE, 1)  # snapshot: 1
    pool.write(PM_BASE, 2)
    txman.add(PM_BASE, 1)  # snapshot: 2 (buffered)
    pool.write(PM_BASE, 3)
    txman.abort()
    assert pool.read(PM_BASE) == 1
