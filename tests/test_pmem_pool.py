"""Unit and property tests for the PM pool's persistence semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PoolError
from repro.pmem.pool import PM_BASE, WORDS_PER_LINE, PMPool


class TestBasics:
    def test_read_defaults_to_zero(self, pool):
        assert pool.read(PM_BASE + 10) == 0

    def test_write_then_read(self, pool):
        pool.write(PM_BASE + 5, 42)
        assert pool.read(PM_BASE + 5) == 42

    def test_write_is_not_durable_until_persisted(self, pool):
        pool.write(PM_BASE + 5, 42)
        assert pool.durable_read(PM_BASE + 5) == 0

    def test_persist_makes_write_durable(self, pool):
        pool.write(PM_BASE + 5, 42)
        pool.persist(PM_BASE + 5, 1)
        assert pool.durable_read(PM_BASE + 5) == 42

    def test_range_roundtrip(self, pool):
        pool.write_range(PM_BASE + 8, [1, 2, 3])
        assert pool.read_range(PM_BASE + 8, 3) == [1, 2, 3]

    def test_contains(self, pool):
        assert pool.contains(PM_BASE)
        assert pool.contains(PM_BASE + pool.size_words - 1)
        assert not pool.contains(PM_BASE - 1)
        assert not pool.contains(PM_BASE + pool.size_words)
        assert not pool.contains(0)

    def test_out_of_bounds_raises(self, pool):
        with pytest.raises(PoolError):
            pool.read(PM_BASE - 1)
        with pytest.raises(PoolError):
            pool.write(PM_BASE + pool.size_words, 1)
        with pytest.raises(PoolError):
            pool.write_range(PM_BASE + pool.size_words - 1, [1, 2])

    def test_negative_range_raises(self, pool):
        with pytest.raises(PoolError):
            pool.flush(PM_BASE, -1)

    def test_zero_size_pool_rejected(self):
        with pytest.raises(PoolError):
            PMPool(0)


class TestCrashSemantics:
    def test_crash_drops_unpersisted(self, pool):
        pool.write(PM_BASE + 1, 11)
        pool.crash()
        assert pool.read(PM_BASE + 1) == 0

    def test_crash_keeps_persisted(self, pool):
        pool.write(PM_BASE + 1, 11)
        pool.persist(PM_BASE + 1, 1)
        pool.write(PM_BASE + 1, 22)  # newer, un-persisted
        pool.crash()
        assert pool.read(PM_BASE + 1) == 11

    def test_flush_without_fence_not_durable_after_crash(self, pool):
        pool.write(PM_BASE + 1, 11)
        pool.flush(PM_BASE + 1, 1)
        pool.crash()
        assert pool.read(PM_BASE + 1) == 0

    def test_flush_then_fence_is_durable(self, pool):
        pool.write(PM_BASE + 1, 11)
        pool.flush(PM_BASE + 1, 1)
        pool.fence()
        pool.crash()
        assert pool.read(PM_BASE + 1) == 11

    def test_cacheline_co_persistence(self, pool):
        """Flushing one word persists buffered neighbours in its line."""
        base = PM_BASE + WORDS_PER_LINE * 4
        pool.write(base, 1)
        pool.write(base + 1, 2)  # same line, never explicitly flushed
        pool.persist(base, 1)
        pool.crash()
        assert pool.read(base) == 1
        assert pool.read(base + 1) == 2

    def test_other_lines_not_co_persisted(self, pool):
        base = PM_BASE + WORDS_PER_LINE * 4
        other = base + WORDS_PER_LINE
        pool.write(base, 1)
        pool.write(other, 2)
        pool.persist(base, 1)
        pool.crash()
        assert pool.read(other) == 0


class TestPersistHooks:
    def test_hook_fires_with_durable_values(self, pool):
        calls = []
        pool.add_persist_hook(lambda a, n, v, t: calls.append((a, n, v, t)))
        pool.write(PM_BASE + 2, 7)
        pool.persist(PM_BASE + 2, 1)
        assert calls == [(PM_BASE + 2, 1, [7], "persist")]

    def test_hook_fires_once_per_explicit_range(self, pool):
        calls = []
        pool.add_persist_hook(lambda a, n, v, t: calls.append((a, n)))
        pool.write(PM_BASE, 1)
        pool.write(PM_BASE + 1, 2)
        pool.flush(PM_BASE, 1)
        pool.flush(PM_BASE + 1, 1)
        pool.fence()
        assert calls == [(PM_BASE, 1), (PM_BASE + 1, 1)]

    def test_hook_not_fired_without_flush(self, pool):
        calls = []
        pool.add_persist_hook(lambda a, n, v, t: calls.append(a))
        pool.write(PM_BASE, 1)
        pool.fence()
        assert calls == []

    def test_remove_hook(self, pool):
        calls = []
        hook = lambda a, n, v, t: calls.append(a)  # noqa: E731
        pool.add_persist_hook(hook)
        pool.remove_persist_hook(hook)
        pool.persist(PM_BASE, 1)
        assert calls == []

    def test_tag_passthrough(self, pool):
        tags = []
        pool.add_persist_hook(lambda a, n, v, t: tags.append(t))
        pool.flush(PM_BASE, 1, tag="tx-commit")
        pool.fence()
        assert tags == ["tx-commit"]


class TestDurableAccess:
    def test_durable_write_bypasses_cache(self, pool):
        pool.write(PM_BASE, 5)  # cached
        pool.durable_write(PM_BASE, 9)
        assert pool.durable_read(PM_BASE) == 9
        assert pool.read(PM_BASE) == 5  # cache still shadows

    def test_durable_write_zero_removes_entry(self, pool):
        pool.durable_write(PM_BASE, 9)
        pool.durable_write(PM_BASE, 0)
        assert pool.durable_items() == {}

    def test_load_durable_replaces_image(self, pool):
        pool.write(PM_BASE, 5)
        pool.persist(PM_BASE, 1)
        pool.load_durable({PM_BASE + 1: 77})
        assert pool.read(PM_BASE) == 0
        assert pool.read(PM_BASE + 1) == 77

    def test_discard_cached(self, pool):
        pool.write(PM_BASE, 5)
        pool.discard_cached(PM_BASE, 1)
        assert pool.read(PM_BASE) == 0
        assert pool.dirty_words() == 0


class TestStats:
    def test_counters(self, pool):
        pool.write(PM_BASE, 1)
        pool.read(PM_BASE)
        pool.persist(PM_BASE, 1)
        pool.crash()
        assert pool.stats["writes"] == 1
        assert pool.stats["reads"] == 1
        assert pool.stats["flushes"] == 1
        assert pool.stats["fences"] == 1
        assert pool.stats["crashes"] == 1


# ----------------------------------------------------------------------
# property-based: the durable image equals a simple model under any
# sequence of writes, persists and crashes
# ----------------------------------------------------------------------
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 63), st.integers(0, 1 << 30)),
        st.tuples(st.just("persist"), st.integers(0, 63), st.integers(1, 4)),
        st.tuples(st.just("crash"), st.just(0), st.just(0)),
    ),
    max_size=60,
)


@given(_ops)
@settings(max_examples=120, deadline=None)
def test_durable_image_matches_model(ops):
    pool = PMPool(256)
    cache = {}
    durable = {}
    for op, a, b in ops:
        addr = PM_BASE + a
        if op == "write":
            pool.write(addr, b)
            cache[addr] = b
        elif op == "persist":
            n = min(b, 256 - a)
            if n <= 0:
                continue
            pool.persist(addr, n)
            first = addr // WORDS_PER_LINE
            last = (addr + n - 1) // WORDS_PER_LINE
            for w in list(cache):
                if first <= w // WORDS_PER_LINE <= last:
                    durable[w] = cache.pop(w)
        else:
            pool.crash()
            cache.clear()
    for w in range(PM_BASE, PM_BASE + 256):
        expected = cache.get(w, durable.get(w, 0))
        assert pool.read(w) == expected
        assert pool.durable_read(w) == durable.get(w, 0)
