"""Tests for failure detection: signatures, monitor, checksum, leaks."""

import pytest

from repro.detector.checksum import ChecksumMonitor
from repro.detector.monitor import Detector, LeakMonitor
from repro.detector.signature import (
    FailureSignature,
    signatures_similar,
    signatures_strongly_similar,
)
from repro.errors import PanicTrap
from repro.lang.compiler import compile_module
from repro.lang.interp import FaultInfo, Machine
from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PM_BASE, PMPool


def _fault(kind="segfault", iid=7, location="f:entry:1", stack=("main:entry:0", "f:entry:1")):
    return FaultInfo(iid=iid, kind=kind, message="x", location=location, stack=list(stack))


class TestSignatures:
    def test_from_fault(self):
        sig = FailureSignature.from_fault(_fault())
        assert sig.kind == "segfault"
        assert sig.fault_iid == 7
        assert sig.stack_funcs[-1] == "f"

    def test_same_kind_is_similar(self):
        a = FailureSignature.from_fault(_fault(iid=7))
        b = FailureSignature.from_fault(_fault(iid=99, location="g:x:0", stack=("g:x:0",)))
        assert signatures_similar(a, b)

    def test_different_kind_not_similar(self):
        a = FailureSignature.from_fault(_fault(kind="segfault"))
        b = FailureSignature.from_fault(_fault(kind="hang"))
        assert not signatures_similar(a, b)

    def test_strong_similarity_requires_matching_site(self):
        a = FailureSignature.from_fault(_fault(iid=7))
        b = FailureSignature.from_fault(_fault(iid=7, location="other"))
        c = FailureSignature.from_fault(
            _fault(iid=99, location="g:x:0", stack=("g:x:0",))
        )
        assert signatures_strongly_similar(a, b)
        assert not signatures_strongly_similar(a, c)


class TestDetector:
    def _machine(self):
        src = (
            'def ok():\n    return 1\n'
            'def boom():\n    panic("dead")\n    return 0\n'
        )
        return Machine(compile_module("t", src))

    def test_observe_success(self):
        machine = self._machine()
        detector = Detector()
        out = detector.observe(machine, lambda: machine.call("ok"))
        assert out.ok and out.fault is None

    def test_observe_trap_records_signature(self):
        machine = self._machine()
        detector = Detector()
        out = detector.observe(machine, lambda: machine.call("boom"))
        assert not out.ok
        assert out.fault.kind == "panic"
        assert detector.last_signature() is out.signature

    def test_hard_failure_needs_recurrence(self):
        machine = self._machine()
        detector = Detector()
        out1 = detector.observe(machine, lambda: machine.call("boom"))
        assert not detector.is_potential_hard_failure(out1.signature)
        out2 = detector.observe(machine, lambda: machine.call("boom"))
        assert detector.is_potential_hard_failure(out2.signature)

    def test_user_checks(self):
        machine = self._machine()
        detector = Detector()
        detector.add_user_check(lambda: "items missing")
        out = detector.observe(machine, lambda: machine.call("ok"))
        assert not out.ok
        assert out.violation == "items missing"


class TestLeakMonitor:
    def test_flags_ratio_breach(self):
        pool = PMPool(1024)
        allocator = PMAllocator(pool)
        live = [allocator.zalloc(10)]
        monitor = LeakMonitor(allocator, lambda: 10, threshold_ratio=2.0)
        assert monitor.check() is None
        for _ in range(3):
            allocator.zalloc(10)  # leaked: expected stays 10
        assert monitor.check() is not None

    def test_flags_absolute_usage(self):
        pool = PMPool(128)
        allocator = PMAllocator(pool)
        allocator.zalloc(110)
        monitor = LeakMonitor(allocator, lambda: 110, usage_limit=0.9)
        assert monitor.check() is not None


class TestChecksum:
    def test_detects_out_of_band_flip(self):
        pool = PMPool(256)
        monitor = ChecksumMonitor(pool)
        monitor.attach()
        pool.write(PM_BASE + 3, 42)
        pool.persist(PM_BASE + 3, 1)
        assert monitor.verify() == []
        # hardware flip: durable change without a persistence point
        pool.durable_write(PM_BASE + 3, 43)
        assert monitor.verify() == [PM_BASE + 3]

    def test_blind_to_properly_persisted_bad_values(self):
        pool = PMPool(256)
        monitor = ChecksumMonitor(pool)
        monitor.attach()
        pool.write(PM_BASE + 3, 42)
        pool.persist(PM_BASE + 3, 1)
        # a logic bug persists a bad value through the normal path
        pool.write(PM_BASE + 3, 99999)
        pool.persist(PM_BASE + 3, 1)
        assert monitor.verify() == []

    def test_detach(self):
        pool = PMPool(256)
        monitor = ChecksumMonitor(pool)
        monitor.attach()
        monitor.detach()
        pool.write(PM_BASE, 1)
        pool.persist(PM_BASE, 1)
        assert monitor.updates == 0
