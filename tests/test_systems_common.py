"""Tests for the shared SystemAdapter scaffolding."""

from repro.systems.common import SystemAdapter
from repro.systems.memcached import MemcachedAdapter
from repro.systems.pmemkv import PmemkvAdapter


def test_static_artifacts_cached_per_class():
    a = MemcachedAdapter()
    b = MemcachedAdapter()
    assert a.module is b.module
    assert a.analysis is b.analysis
    assert a.guid_map is b.guid_map


def test_instances_have_independent_pools():
    a = MemcachedAdapter()
    b = MemcachedAdapter()
    a.start()
    b.start()
    a.insert(1, 111)
    assert b.lookup(1) == -1


def test_tracing_and_checkpoint_toggles():
    vanilla = MemcachedAdapter(with_tracing=False, with_checkpoint=False)
    vanilla.start()
    vanilla.insert(1, 1)
    assert vanilla.trace is None
    assert vanilla.ckpt is None

    ckpt_only = MemcachedAdapter(with_tracing=False, with_checkpoint=True)
    ckpt_only.start()
    ckpt_only.insert(1, 1)
    assert ckpt_only.trace is None
    assert ckpt_only.ckpt.log.total_updates > 0

    traced = MemcachedAdapter(with_tracing=True, with_checkpoint=False)
    traced.start()
    traced.insert(1, 1)
    traced.trace.flush()
    assert len(traced.trace.records) > 0


def test_restart_counts_and_reseeds():
    a = PmemkvAdapter(seed=5)
    a.start()
    assert a.restarts == 0
    machine_before = a.machine
    a.restart()
    assert a.restarts == 1
    assert a.machine is not machine_before


def test_restart_drops_unpersisted_guest_state():
    a = PmemkvAdapter()
    a.start()
    a.insert(1, 11)
    # a buffered (never persisted) stray write must not survive
    a.pool.write(a.root + 2, 424242)
    a.restart()
    a.recover()
    assert a.lookup(1) == 11
    assert a.pool.read(a.root + 2) != 424242


def test_recover_traces_addresses_only_when_tracing():
    a = PmemkvAdapter(with_tracing=False)
    a.start()
    a.insert(1, 11)
    a.restart()
    assert a.recover() == set()

    b = PmemkvAdapter(with_tracing=True)
    b.start()
    b.insert(1, 11)
    b.restart()
    touched = b.recover()
    assert touched
    assert all(b.pool.contains(addr) for addr in touched)


def test_base_class_interface_is_abstract():
    import pytest

    base = SystemAdapter.__new__(SystemAdapter)
    with pytest.raises(NotImplementedError):
        base.insert(1, 1)
    with pytest.raises(NotImplementedError):
        base.lookup(1)
    with pytest.raises(NotImplementedError):
        base.delete(1)
    with pytest.raises(NotImplementedError):
        base.count_items()
    assert base.consistency_violations() == []
    assert base.expected_item_words() == 0
