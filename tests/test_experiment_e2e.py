"""End-to-end experiment tests over the fast fault scenarios.

Full 12x4 matrices live in the benchmarks; here we pin the key paper
shapes on the quickest cases so the suite stays fast.
"""

import pytest

from repro.faults.fuzzed import FUZZ_FAMILIES
from repro.faults.registry import (
    ALL_SCENARIOS,
    TABLE2_SCENARIOS,
    scenario_by_id,
    scenarios_by_family,
)
from repro.harness.experiment import SOLUTIONS, run_experiment


def test_registry_covers_table2():
    assert [s.fid for s in TABLE2_SCENARIOS] == [f"f{i}" for i in range(1, 13)]
    systems = {s.system for s in TABLE2_SCENARIOS}
    assert systems == {"memcached", "redis", "cceh", "pelikan", "pmemkv"}
    assert all(s.family == "table2" for s in TABLE2_SCENARIOS)


def test_registry_grows_with_fuzzed_families():
    # the seeded scenarios come first, fuzzer discoveries follow with
    # contiguous fids; every discovery belongs to a fuzz family
    n = len(ALL_SCENARIOS)
    assert [s.fid for s in ALL_SCENARIOS] == [f"f{i}" for i in range(1, n + 1)]
    fuzzed = ALL_SCENARIOS[len(TABLE2_SCENARIOS):]
    assert len(fuzzed) >= 6
    assert {s.family for s in fuzzed} == set(FUZZ_FAMILIES)
    by_family = scenarios_by_family()
    assert by_family["table2"] == list(TABLE2_SCENARIOS)
    assert sum(len(v) for v in by_family.values()) == n


def test_unknown_solution_rejected():
    with pytest.raises(ValueError):
        run_experiment("f4", "nope")


class TestF4ImmediateCrash:
    """The append-overflow segfault: every solution handles it."""

    @pytest.mark.parametrize("solution", SOLUTIONS)
    def test_recovers(self, solution):
        result = run_experiment("f4", solution, seed=0)
        assert result.manifested
        assert result.confirmed_hard
        assert result.mitigation.recovered
        if solution == "arthas-bi":
            # bisect keeps the minimal prefix that stops recurrence; on
            # accounting-heavy faults that can strand counter updates
            # outside the one-hop forward purge (the strategy's
            # documented semantic-consistency trade-off)
            assert result.mitigation.consistent is not None
        else:
            assert result.mitigation.consistent

    def test_arthas_beats_pmcriu_on_data_loss(self):
        arthas = run_experiment("f4", "arthas", seed=0).mitigation
        pmcriu = run_experiment("f4", "pmcriu", seed=0).mitigation
        assert arthas.discarded_pct < pmcriu.discarded_pct

    def test_invariants_detect_f4_corruption(self):
        result = run_experiment("f4", "arthas", seed=0)
        assert result.invariant_violations  # Table 7: f4 detectable


class TestF5Bitflip:
    def test_arthas_repairs_divergence(self):
        result = run_experiment("f5", "arthas", seed=0)
        m = result.mitigation
        assert m.recovered
        assert m.attempts == 1
        assert "divergent" in m.notes
        assert m.reverted_updates == 0  # repaired, nothing discarded

    def test_checksum_detects_only_hw_fault(self):
        flip = run_experiment("f5", "arthas", seed=0, with_checksum=True)
        assert flip.checksum_hits > 0
        soft = run_experiment("f11", "arthas", seed=0, with_checksum=True)
        assert soft.checksum_hits == 0


class TestF11NullStats:
    def test_arthas_recovers_consistently(self):
        result = run_experiment("f11", "arthas", seed=0)
        assert result.mitigation.recovered
        assert result.mitigation.consistent

    def test_arckpt_times_out(self):
        result = run_experiment("f11", "arckpt", seed=0)
        assert not result.mitigation.recovered
        assert result.mitigation.timed_out


class TestF12Leak:
    def test_arthas_leakfix_discards_nothing(self):
        result = run_experiment("f12", "arthas", seed=0)
        m = result.mitigation
        assert m.recovered
        assert m.reverted_updates == 0
        assert m.leaked_blocks > 0
        assert m.consistent

    def test_pmcriu_recovers_with_data_loss(self):
        result = run_experiment("f12", "pmcriu", seed=0)
        m = result.mitigation
        assert m.recovered
        assert m.discarded_pct > 0


class TestMitigationAccounting:
    def test_mitigation_time_includes_reexec_delays(self):
        m = run_experiment("f11", "arthas", seed=0).mitigation
        # each attempt pays a 3-5s re-execution delay
        assert m.duration_seconds >= 3.0 * m.attempts

    def test_discard_metric_bounded(self):
        m = run_experiment("f4", "arthas", seed=0).mitigation
        assert 0 <= m.discarded_pct <= 100
        assert m.total_updates > 0

    def test_slicing_metadata_reported(self):
        m = run_experiment("f11", "arthas", seed=0).mitigation
        assert m.plan_candidates > 0
        assert m.pm_slice_size > 0
        assert m.slice_size >= m.pm_slice_size
