"""Tests for the pmempool-check analog."""

from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PMPool
from repro.pmem.poolcheck import check_pool
from repro.systems.memcached import MemcachedAdapter


def _stack():
    pool = PMPool(1024)
    return pool, PMAllocator(pool)


def test_fresh_pool_is_consistent():
    pool, allocator = _stack()
    report = check_pool(pool, allocator)
    assert report.ok
    assert report.warnings == []
    assert "consistent" in report.summary()


def test_healthy_workload_is_consistent():
    pool, allocator = _stack()
    blocks = [allocator.zalloc(8) for _ in range(10)]
    allocator.set_root(blocks[0])
    for b in blocks:
        pool.durable_write(b, 42)
    for b in blocks[5:]:
        pool.durable_write(b, 0)  # clear before freeing
        allocator.free(b)
    assert check_pool(pool, allocator).ok


def test_detects_bad_root_pointer():
    pool, allocator = _stack()
    block = allocator.zalloc(4)
    allocator.set_root(block)
    allocator.free(block)
    report = check_pool(pool, allocator)
    assert not report.ok
    assert any("root pointer" in e for e in report.errors)


def test_warns_on_stray_data_in_free_space():
    pool, allocator = _stack()
    block = allocator.zalloc(4)
    pool.durable_write(block, 99)
    allocator.free(block)  # data left behind
    report = check_pool(pool, allocator)
    assert report.ok  # a warning, not an error
    assert any("free space" in w for w in report.warnings)


def test_warns_on_dangling_persistent_pointer():
    pool, allocator = _stack()
    holder = allocator.zalloc(1)
    target = allocator.zalloc(4)
    pool.durable_write(holder, target)
    allocator.free(target)
    # zero the freed block so only the dangling pointer remains
    for i in range(4):
        pool.durable_write(target + i, 0)
    report = check_pool(pool, allocator)
    assert any("dangling" in w for w in report.warnings)


def test_detects_corrupted_allocator_metadata():
    pool, allocator = _stack()
    a = allocator.zalloc(8)
    # corrupt the metadata directly: claim an overlapping block
    allocator._allocations[a + 4] = 8
    report = check_pool(pool, allocator)
    assert not report.ok


def test_running_system_pool_stays_consistent():
    mc = MemcachedAdapter()
    mc.start()
    for k in range(50):
        mc.insert(k, k)
    for k in range(0, 50, 3):
        mc.delete(k)
    report = check_pool(mc.pool, mc.allocator)
    assert report.ok
