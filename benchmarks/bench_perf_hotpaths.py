"""Hot-path perf trajectory: indexed reactor vs the seed linear scans.

Times plan computation, purge/rollback/bisect mitigation, raw VM
throughput, the checkpoint *write path* (``record_update``/persist-hook
throughput with and without the PR 1 indexes' incremental maintenance),
the *cluster* write path (physical delta shipping vs replica
re-execution at replication 2/3, plus compacted-rebase vs full-replay
heal times, digest-identical by construction), the experiment-matrix
sweep (serial loop vs process-pool fan-out, summary-identical by
construction) and the fault-injection sweep (recovery success rate +
mean recovery time over every enumerable crash site; 100% verification
required) on deterministic synthetic state (see
:mod:`repro.harness.hotpaths`), and writes ``results/BENCH_hotpaths.json``
so subsequent PRs can track the numbers.

Run standalone (not part of the pytest matrix benchmarks)::

    PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py           # full, 50k updates + 12x4 matrix
    PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py --quick   # 5k-update smoke + 6-cell matrix
    PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py --no-matrix

or via the CLI: ``python -m repro bench-hotpaths [--quick]`` (micro
benches only; the matrix stage runs two full sweeps and is script-only).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)  # noqa: E402

from repro.harness.hotpaths import (
    bench_inject_sweep,
    bench_matrix_sweep,
    render_summary,
    run_hotpaths,
    write_report,
)

DEFAULT_OUT = os.path.join(
    os.path.dirname(__file__), "..", "results", "BENCH_hotpaths.json"
)

#: full-size run (the acceptance number) vs the smoke-check size
FULL_UPDATES = 50_000
QUICK_UPDATES = 5_000

#: quick-mode matrix subset: cheap cells, still covering two solutions
QUICK_MATRIX_FIDS = ["f2", "f4", "f10"]
QUICK_MATRIX_SOLUTIONS = ["pmcriu", "arckpt"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"smoke check: {QUICK_UPDATES} updates instead of "
             f"{FULL_UPDATES}, and a small matrix subset",
    )
    parser.add_argument("--updates", type=int, default=None,
                        help="override the synthetic log size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--vm-iters", type=int, default=50_000)
    parser.add_argument("--jobs", type=int, default=None,
                        help="matrix fan-out width (default: CPU count)")
    parser.add_argument("--no-matrix", action="store_true",
                        help="skip the serial-vs-parallel matrix timing")
    parser.add_argument("--no-inject", action="store_true",
                        help="skip the fault-injection sweep stage")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="report path ('-' to skip writing)")
    args = parser.parse_args(argv)

    n_updates = args.updates
    if n_updates is None:
        n_updates = QUICK_UPDATES if args.quick else FULL_UPDATES
    out_path = None if args.out == "-" else args.out
    report = run_hotpaths(
        n_updates=n_updates, seed=args.seed, vm_iters=args.vm_iters,
    )
    if not args.no_matrix:
        if args.quick:
            report["matrix"] = bench_matrix_sweep(
                jobs=args.jobs,
                fids=QUICK_MATRIX_FIDS,
                solutions=QUICK_MATRIX_SOLUTIONS,
                seeds=(args.seed,),
            )
        else:
            report["matrix"] = bench_matrix_sweep(
                jobs=args.jobs, seeds=(args.seed,)
            )
    if not args.no_inject:
        report["inject_sweep"] = bench_inject_sweep(
            seed=args.seed, max_per_site=1 if args.quick else 3,
        )
    if out_path is not None:
        write_report(report, out_path)
    print(render_summary(report))
    if out_path is not None:
        print(f"wrote {os.path.relpath(out_path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
