"""Hot-path perf trajectory: indexed reactor vs the seed linear scans.

Times plan computation, purge/rollback/bisect mitigation and raw VM
throughput on a large synthetic checkpoint log (see
:mod:`repro.harness.hotpaths`) and writes ``results/BENCH_hotpaths.json``
so subsequent PRs can track the numbers.

Run standalone (not part of the pytest matrix benchmarks)::

    PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py           # full, 50k updates
    PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py --quick   # 5k-update smoke, <30s

or via the CLI: ``python -m repro bench-hotpaths [--quick]``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)  # noqa: E402

from repro.harness.hotpaths import render_summary, run_and_write

DEFAULT_OUT = os.path.join(
    os.path.dirname(__file__), "..", "results", "BENCH_hotpaths.json"
)

#: full-size run (the acceptance number) vs the smoke-check size
FULL_UPDATES = 50_000
QUICK_UPDATES = 5_000


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"smoke check: {QUICK_UPDATES} updates instead of {FULL_UPDATES}",
    )
    parser.add_argument("--updates", type=int, default=None,
                        help="override the synthetic log size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--vm-iters", type=int, default=50_000)
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="report path ('-' to skip writing)")
    args = parser.parse_args(argv)

    n_updates = args.updates
    if n_updates is None:
        n_updates = QUICK_UPDATES if args.quick else FULL_UPDATES
    out_path = None if args.out == "-" else args.out
    report = run_and_write(
        n_updates=n_updates, seed=args.seed, vm_iters=args.vm_iters,
        out_path=out_path,
    )
    print(render_summary(report))
    if out_path is not None:
        print(f"wrote {os.path.relpath(out_path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
