"""Ablation: static vs dynamic slicing, and bisect vs one-by-one reversion.

Two design choices the paper discusses but does not evaluate:

* Section 7 ("Analysis Accuracy") proposes **dynamic program slicing** to
  tighten the static over-approximation, at the cost of runtime
  dependence tracking.  We measure both sides: slice/candidate sizes and
  mitigation attempts shrink, recording slows the run down several fold.
* The technical report's **binary-search reversion** replaces one
  re-execution per candidate with O(log n) probes when slice nodes alias
  many sequence numbers.
"""

import time

from conftest import emit

from repro.analysis.dynslice import DynamicDependenceRecorder, dynamic_slice
from repro.detector.monitor import Detector
from repro.harness.report import render_table
from repro.harness.simclock import ReexecDelay, SimClock
from repro.reactor.plan import compute_plan, distance_policy
from repro.reactor.revert import Reverter
from repro.reactor.server import ReactorServer
from repro.systems.memcached import MemcachedAdapter


def _poisoned_memcached(with_recorder):
    """A memcached wedged by the f1 refcount bug, optionally recorded."""
    mc = MemcachedAdapter()
    mc.start()
    recorder = None
    if with_recorder:
        recorder = DynamicDependenceRecorder()
        mc.machine.dep_recorder = recorder
    start = time.perf_counter()
    for key in range(60):
        mc.insert(key, 900_000_000 + key)
    run_seconds = time.perf_counter() - start
    victim = 5
    while mc.call("mc_refcount", mc.root, victim) != 0:
        mc.lookup(victim)
    mc.reap()
    mc.insert(victim + (1 << 20), 4242)
    detector = Detector()
    probe = victim + (1 << 21)
    outcome = detector.observe(mc.machine, lambda: mc.lookup(probe))
    return mc, recorder, detector, outcome, probe, run_seconds


def _mitigate(mc, detector, probe, plan, strategy):
    def reexec():
        mc.machine.dep_recorder = None  # diagnostics off during recovery
        mc.restart()
        return detector.observe(
            mc.machine, lambda: (mc.recover(), mc.lookup(probe))
        )

    reverter = Reverter(mc.ckpt.log, mc.pool, mc.allocator, reexec=reexec,
                        clock=SimClock(), reexec_delay=ReexecDelay(2))
    if strategy == "bisect":
        return reverter.mitigate_bisect(plan)
    return reverter.mitigate_purge(plan)


def test_ablation_static_vs_dynamic_slicing(benchmark):
    benchmark.pedantic(
        lambda: _poisoned_memcached(False), rounds=1, iterations=1
    )
    rows = []
    results = {}
    for mode in ("static", "dynamic"):
        mc, recorder, detector, outcome, probe, run_seconds = (
            _poisoned_memcached(mode == "dynamic")
        )
        server = ReactorServer(mc.module, analysis=mc.analysis)
        override = (
            dynamic_slice(recorder, outcome.fault.iid)
            if recorder is not None
            else None
        )
        plan = compute_plan(
            mc.analysis, mc.guid_map, mc.trace, mc.ckpt.log,
            outcome.fault.iid, policy=distance_policy(max_distance=8),
            slice_override=override,
        )
        result = _mitigate(mc, detector, probe, plan, "purge")
        rows.append([
            mode,
            plan.slice_size,
            len(plan.candidates),
            result.attempts,
            result.discarded_updates,
            f"{run_seconds:.2f}",
        ])
        results[mode] = (plan, result)
    emit(render_table(
        "Ablation: static vs dynamic slicing on the f1 deadlock",
        ["slicing", "slice nodes", "candidates", "attempts",
         "discarded", "workload secs (60 inserts)"],
        rows,
        note="dynamic slices are tighter but pay dependence-recording "
             "overhead during normal operation",
    ))
    static_plan, static_res = results["static"]
    dyn_plan, dyn_res = results["dynamic"]
    assert static_res.recovered and dyn_res.recovered
    assert dyn_plan.slice_size <= static_plan.slice_size
    assert len(dyn_plan.candidates) <= len(static_plan.candidates)


def test_ablation_bisect_vs_one_by_one(benchmark):
    benchmark.pedantic(
        lambda: _poisoned_memcached(False), rounds=1, iterations=1
    )
    rows = []
    outcomes = {}
    for strategy in ("one-by-one", "bisect"):
        mc, _rec, detector, outcome, probe, _secs = _poisoned_memcached(False)
        plan = compute_plan(
            mc.analysis, mc.guid_map, mc.trace, mc.ckpt.log,
            outcome.fault.iid, policy=distance_policy(max_distance=8),
        )
        result = _mitigate(mc, detector, probe, plan, strategy)
        rows.append([
            strategy, result.attempts, result.discarded_updates,
            "Y" if result.recovered else "N",
        ])
        outcomes[strategy] = result
    emit(render_table(
        "Ablation: one-by-one vs binary-search reversion on f1",
        ["strategy", "re-execution attempts", "discarded updates",
         "recovered"],
        rows,
        note="bisect = revert everything once, then binary-search the "
             "minimal newest-first prefix (technical-report variant)",
    ))
    assert outcomes["one-by-one"].recovered
    assert outcomes["bisect"].recovered
