"""Figure 9: data discarded in rollback by the different solutions.

The headline result: Arthas discards an order of magnitude less data
than the coarse checkpoint-rollback baseline (paper: 3.1% vs 56.5% on
average; abstract: "10x less data on average").
"""

from conftest import FAULTS, emit, matrix_cell

from repro.harness.metrics import mean
from repro.harness.report import render_grouped_bars


def test_fig9_discarded_data(benchmark, matrix):
    benchmark.pedantic(lambda: matrix_cell("f11", "arthas"), rounds=1, iterations=1)
    series = {}
    for solution, label in (
        ("arthas", "Arthas"),
        ("arckpt", "ArCkpt"),
        ("pmcriu", "pmCRIU"),
    ):
        values = {}
        for fid in FAULTS:
            m = matrix_cell(fid, solution).mitigation
            if m is not None and m.recovered:
                values[fid] = m.discarded_pct
        series[label] = values
    emit(render_grouped_bars(
        "Figure 9: data discarded in rollback (percent of state updates / "
        "items, recovered cases only)",
        FAULTS,
        series,
        unit="%",
    ))
    avg_arthas = mean(list(series["Arthas"].values()))
    avg_pmcriu = mean(list(series["pmCRIU"].values()))
    emit(f"average discarded: Arthas {avg_arthas:.2f}%, pmCRIU {avg_pmcriu:.2f}% "
         f"(ratio {avg_pmcriu / max(avg_arthas, 1e-9):.1f}x)")
    # the abstract's claim: an order of magnitude less data discarded
    assert avg_pmcriu > 5 * avg_arthas
    # leak mitigations discard zero good items (paper Section 6.4)
    assert series["Arthas"]["f8"] == 0.0
    assert series["Arthas"]["f12"] == 0.0
