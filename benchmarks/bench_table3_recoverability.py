"""Table 3: recoverability of each solution on the 12 faults.

Expected shape (paper): Arthas recovers all 12; pmCRIU recovers most but
fails the race (f3) and is only probabilistically successful on the
randomly-timed faults (f5, f8); ArCkpt only handles the immediate-crash
overflows (f4, f10).
"""

from conftest import FAULTS, emit, matrix_cell

from repro.harness.metrics import fraction
from repro.harness.report import render_table

#: seeds used for the probabilistic pmCRIU cases (paper: 10 runs)
PROB_SEEDS = list(range(10))
PROB_FAULTS = ("f5", "f8")


def _cell(fid, solution):
    if solution == "pmcriu" and fid in PROB_FAULTS:
        hits = 0
        total = 0
        for seed in PROB_SEEDS:
            result = matrix_cell(fid, solution, seed)
            if not result.manifested:
                continue
            total += 1
            if result.mitigation.recovered:
                hits += 1
        return fraction(hits, total)
    result = matrix_cell(fid, solution)
    if not result.manifested:
        return "n/a"
    return "Y" if result.mitigation.recovered else "N"


def test_table3_recoverability(benchmark, matrix):
    benchmark.pedantic(
        lambda: matrix_cell("f11", "arthas"), rounds=1, iterations=1
    )
    rows = []
    for solution, label in (
        ("pmcriu", "pmCRIU"),
        ("arckpt", "ArCkpt"),
        ("arthas", "Arthas"),
    ):
        rows.append([label] + [_cell(fid, solution) for fid in FAULTS])
    emit(render_table(
        "Table 3: recoverability in mitigating the evaluated failures",
        ["solution"] + FAULTS,
        rows,
        note="Y=recovered, N=not recovered, k/n=probabilistic (seeded runs)",
    ))
    arthas_row = rows[2][1:]
    assert all(c == "Y" for c in arthas_row), "Arthas must recover all 12"
    arckpt_row = rows[1][1:]
    assert arckpt_row[FAULTS.index("f4")] == "Y"
    assert arckpt_row[FAULTS.index("f10")] == "Y"
    assert sum(1 for c in arckpt_row if c == "Y") <= 4
    pmcriu_row = rows[0][1:]
    assert pmcriu_row[FAULTS.index("f3")] == "N"  # the unrecoverable race
    assert sum(1 for c in pmcriu_row if c == "Y") >= 8
