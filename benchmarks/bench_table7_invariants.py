"""Table 7 + Section 6.6: invariant checks and checksums as alternatives.

Expected shape (paper): common invariant checks detect only a minority
of the 12 hard faults (4/12 in the paper), and checksums catch exactly
the out-of-band hardware corruption (f5) — both are detection-only and
fix nothing.
"""

from conftest import FAULTS, emit

from repro.harness.experiment import run_experiment
from repro.harness.report import render_table


def _detect(fid):
    return run_experiment(fid, "arthas", seed=0, with_checksum=True,
                          detect_only=True)


def test_table7_invariant_and_checksum_detectability(benchmark):
    benchmark.pedantic(lambda: _detect("f11"), rounds=1, iterations=1)
    rows = []
    invariant_hits = 0
    checksum_hits = 0
    for fid in FAULTS:
        result = _detect(fid)
        assert result.manifested, f"{fid} did not manifest"
        inv = "Y" if result.invariant_violations else "N"
        ck = "Y" if result.checksum_hits else "N"
        invariant_hits += inv == "Y"
        checksum_hits += ck == "Y"
        rows.append([fid, inv, ck,
                     (result.invariant_violations or [""])[0][:48]])
    emit(render_table(
        "Table 7 / Section 6.6: detectability by common invariant checks "
        "and checksums",
        ["fault", "invariant", "checksum", "first violated invariant"],
        rows,
        note=f"invariants detect {invariant_hits}/12, "
             f"checksums detect {checksum_hits}/12 (and fix none)",
    ))
    # checksums catch exactly the hardware bit flip
    assert [r[0] for r in rows if r[2] == "Y"] == ["f5"]
    # invariants catch only a minority of the hard faults
    assert 2 <= invariant_hits <= 6
