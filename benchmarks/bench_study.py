"""Section 2 study artifacts: Table 1, Figure 2, Figure 3, Section 2.6.

Pure-data reproduction: the 28-bug dataset's aggregates are printed in
the paper's layout; the benchmark times the aggregation pipeline.
"""

from conftest import emit

from repro.faults.study import (
    STUDY_BUGS,
    bugs_per_system,
    consequence_distribution,
    propagation_distribution,
    root_cause_distribution,
)
from repro.harness.report import render_bars, render_table


def _table1_rows():
    counts = bugs_per_system()
    order = [
        ("cceh", "new"), ("dash", "new"), ("pmemkv", "new"),
        ("levelhash", "new"), ("recipe", "new"),
        ("memcached", "ported"), ("redis", "ported"),
    ]
    return [[system, origin, counts[(system, origin)]] for system, origin in order]


def test_table1_collected_bugs(benchmark):
    rows = benchmark(_table1_rows)
    emit(render_table(
        "Table 1: collected hard fault bugs in new and ported PM systems",
        ["system", "type", "cases"],
        rows,
        note=f"total: {len(STUDY_BUGS)} bugs (8 new + 20 ported)",
    ))
    assert sum(r[2] for r in rows) == 28


def test_figure2_root_causes(benchmark):
    dist = benchmark(root_cause_distribution)
    emit(render_bars("Figure 2: root cause of studied persistent failures",
                     dist, unit="%"))
    assert abs(sum(dist.values()) - 100.0) < 0.01


def test_figure3_consequences(benchmark):
    dist = benchmark(consequence_distribution)
    emit(render_bars("Figure 3: consequence of studied persistent failures",
                     dist, unit="%"))
    assert dist["repeated crash"] == max(dist.values())


def test_section26_propagation_types(benchmark):
    dist = benchmark(propagation_distribution)
    emit(render_bars("Section 2.6: fault propagation patterns", dist, unit="%"))
    assert dist["Type II"] > 60  # the majority involve bad-state propagation
