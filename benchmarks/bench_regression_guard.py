"""Bench-regression guard: quick hot-path run vs the committed numbers.

Re-runs the ``bench-hotpaths --quick`` micro benches and compares the
*ratios* (speedups, overhead percentages) against the committed
``results/BENCH_hotpaths.json``.  Absolute times differ across machines
and scales — the committed report is a 50k-update run, this guard runs
5k — so every check is a generous tolerance band plus a hard sanity
floor, not an equality:

* each indexed-vs-reference speedup must stay above a floor AND above a
  small fraction of the committed 50k-scale speedup (a real regression
  — reintroducing a linear scan, a full-pool probe restore — collapses
  the ratio by orders of magnitude, far below any band here);
* both pool-equivalence oracles (``pool_identical``) must still hold;
* the checkpoint write-path index overhead may not explode past the
  committed overhead by more than an absolute budget;
* the committed matrix parallel speedup is sanity-checked only when the
  committed run had more than one CPU (a single-core runner measures
  process-pool overhead, not parallelism — that check is skipped, as is
  the whole section when the committed report predates it).

Exits non-zero listing every violated band, so CI fails the PR.

Run::

    PYTHONPATH=src python benchmarks/bench_regression_guard.py
    PYTHONPATH=src python benchmarks/bench_regression_guard.py --updates 2000
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)  # noqa: E402

from repro.harness.hotpaths import run_hotpaths

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(__file__), "..", "results", "BENCH_hotpaths.json"
)

#: fraction of the committed speedup the quick run must retain.  Quick
#: runs are 10x smaller, and the indexed-vs-linear gap *grows* with
#: scale (the reference scans are quadratic), so the relative band is
#: additionally capped: a committed 13000x rollback speedup measures in
#: the low hundreds at 5k, and a real regression — a reintroduced
#: linear scan, a full-pool probe restore — collapses any of these
#: ratios to ~1, far below every band here.
RELATIVE_FLOOR = 0.05
RELATIVE_CAP = 10.0

#: no speedup may fall below this regardless of the committed value
HARD_FLOOR = 3.0

#: write-path index overhead may exceed the committed percentage by at
#: most this many absolute points (the measurement itself swings tens
#: of points with machine load; per-update O(log) -> O(n) regressions
#: land in the hundreds)
OVERHEAD_BUDGET_PCT = 75.0

#: the fused VM must beat per-step table dispatch by at least this
#: factor.  The full-scale target is 2x; the hard floor sits below it
#: because a loaded CI runner eats into the margin, while a real
#: regression (fused silently degrading to per-step dispatch) lands at
#: ~1.0, well under any band here
FUSED_HARD_FLOOR = 1.5
FUSED_RELATIVE_FLOOR = 0.25
FUSED_RELATIVE_CAP = 4.0

#: non-quarantined traffic during an active mitigation must see a p99
#: at least this much lower than stop-the-world serving.  The committed
#: target is >= 5x; the hard floor sits below it because the measured
#: ratio swings with runner load, while a real regression (the
#: cooperative chunking silently degrading to one long stall) lands the
#: ratio at ~1
LIVE_HARD_FLOOR = 2.5
LIVE_RELATIVE_FLOOR = 0.25
LIVE_RELATIVE_CAP = 5.0

#: the delta engine's replication path (time above the replication-1
#: floor) must beat replica re-execution by at least this factor at
#: replication 3.  The acceptance target is >= 3x; the hard floor sits
#: at 2 because the ratio divides by a small time gap and swings with
#: runner load, while a real regression (delta shipping silently
#: re-executing the guest) lands at ~1
CLUSTER_HARD_FLOOR = 2.0
CLUSTER_RELATIVE_FLOOR = 0.25
CLUSTER_RELATIVE_CAP = 3.0


class _Checks:
    def __init__(self) -> None:
        self.rows: List[tuple] = []
        self.failures: List[str] = []

    def bound(self, name: str, measured: float, floor: float) -> None:
        ok = measured >= floor
        self.rows.append((name, f"{measured:.2f}", f">= {floor:.2f}", ok))
        if not ok:
            self.failures.append(name)

    def ceiling(self, name: str, measured: float, limit: float) -> None:
        ok = measured <= limit
        self.rows.append((name, f"{measured:.2f}", f"<= {limit:.2f}", ok))
        if not ok:
            self.failures.append(name)

    def flag(self, name: str, value: bool) -> None:
        self.rows.append((name, value, "True", bool(value)))
        if not value:
            self.failures.append(name)

    def skip(self, name: str, reason: str) -> None:
        self.rows.append((name, "-", f"skipped: {reason}", True))

    def render(self) -> str:
        width = max(len(r[0]) for r in self.rows)
        lines = []
        for name, measured, bound, ok in self.rows:
            mark = "ok  " if ok else "FAIL"
            lines.append(f"  {mark} {name:<{width}}  {measured}  ({bound})")
        return "\n".join(lines)


def _speedup_floor(committed: Optional[float]) -> float:
    if committed is None:
        return HARD_FLOOR
    return max(HARD_FLOOR, min(committed * RELATIVE_FLOOR, RELATIVE_CAP))


def _fused_floor(committed: Optional[float]) -> float:
    if committed is None:
        return FUSED_HARD_FLOOR
    return max(FUSED_HARD_FLOOR,
               min(committed * FUSED_RELATIVE_FLOOR, FUSED_RELATIVE_CAP))


def _live_floor(committed: Optional[float]) -> float:
    if committed is None:
        return LIVE_HARD_FLOOR
    return max(LIVE_HARD_FLOOR,
               min(committed * LIVE_RELATIVE_FLOOR, LIVE_RELATIVE_CAP))


def _cluster_floor(committed: Optional[float]) -> float:
    if committed is None:
        return CLUSTER_HARD_FLOOR
    return max(CLUSTER_HARD_FLOOR,
               min(committed * CLUSTER_RELATIVE_FLOOR, CLUSTER_RELATIVE_CAP))


def run_guard(baseline_path: str, n_updates: int, seed: int) -> int:
    with open(baseline_path) as f:
        baseline = json.load(f)

    fresh = run_hotpaths(n_updates=n_updates, seed=seed)
    checks = _Checks()

    # ---- plan ---------------------------------------------------------
    committed_plan = baseline.get("plan", {}).get("speedup")
    checks.bound("plan.speedup", fresh["plan"]["speedup"],
                 _speedup_floor(committed_plan))

    # ---- mitigation (purge / rollback / bisect) -----------------------
    for mode, cell in sorted(fresh["mitigation"].items()):
        committed = baseline.get("mitigation", {}).get(mode, {})
        checks.bound(f"mitigation.{mode}.speedup", cell["speedup"],
                     _speedup_floor(committed.get("speedup")))
        checks.flag(f"mitigation.{mode}.pool_identical",
                    cell["pool_identical"])

    # ---- probe engine -------------------------------------------------
    probe = fresh["probe_engine"]
    committed_probe = baseline.get("probe_engine", {}).get("speedup")
    checks.bound("probe_engine.speedup", probe["speedup"],
                 _speedup_floor(committed_probe))
    checks.flag("probe_engine.pool_identical", probe["pool_identical"])

    # ---- vm_fused (superinstruction engine vs table oracle) -----------
    vm = fresh["vm"]
    committed_fused = baseline.get("vm", {}).get("fused_speedup")
    checks.bound("vm_fused.speedup", vm["fused_speedup"],
                 _fused_floor(committed_fused))
    checks.flag("vm_fused.engines_identical",
                vm.get("engines_identical", False))

    # ---- write path ---------------------------------------------------
    fresh_overhead = fresh["write_path"]["record_update"][
        "index_overhead_pct"]
    committed_overhead = (
        baseline.get("write_path", {})
        .get("record_update", {})
        .get("index_overhead_pct", 0.0)
    )
    checks.ceiling("write_path.record_update.index_overhead_pct",
                   fresh_overhead, committed_overhead + OVERHEAD_BUDGET_PCT)

    # ---- write_path_staged (staged log vs the eager oracle) -----------
    # bench_write_path raises outright when the structural digests
    # diverge; the flag additionally fails CI if the smoke ever gets
    # skipped or its result misreported
    checks.flag("write_path_staged.staged_eager_identical",
                fresh["write_path"].get("staged_eager_identical", False))
    fresh_ycsb = fresh["write_path"].get("ycsb")
    committed_ycsb = (
        baseline.get("write_path", {})
        .get("ycsb", {})
        .get("index_overhead_pct")
    )
    if fresh_ycsb is None:
        checks.skip("write_path_staged.ycsb_overhead_pct",
                    "no ycsb section in fresh run")
    else:
        checks.ceiling("write_path_staged.ycsb_overhead_pct",
                       fresh_ycsb["index_overhead_pct"],
                       (committed_ycsb or 0.0) + OVERHEAD_BUDGET_PCT)

    # ---- live traffic (scoped quarantine vs stop-the-world) -----------
    live = fresh["live_traffic"]
    committed_live = (
        baseline.get("live_traffic", {}).get("stw_over_scoped_p99_ratio")
    )
    checks.bound("live_traffic.stw_over_scoped_p99_ratio",
                 live["stw_over_scoped_p99_ratio"],
                 _live_floor(committed_live))
    # bench_live_traffic raises outright on digest or recovery mismatch;
    # the flags additionally fail CI if the section gets skipped or its
    # result misreported
    checks.flag("live_traffic.digests_identical",
                live.get("digests_identical", False))
    checks.flag("live_traffic.recovered", live.get("recovered", False))

    # ---- cluster (delta replication vs replica re-execution) ----------
    cluster = fresh["cluster"]
    committed_cluster = baseline.get("cluster", {}).get("repl_speedup_r3")
    checks.bound("cluster.repl_speedup_r3", cluster["repl_speedup_r3"],
                 _cluster_floor(committed_cluster))
    # bench_cluster raises outright on a cross-engine digest mismatch;
    # the flag additionally fails CI if the oracle gets skipped or its
    # result misreported
    checks.flag("cluster.digests_identical",
                cluster.get("digests_identical", False))
    checks.bound("cluster.heal_speedup", cluster["heal"]["speedup"], 1.0)

    # ---- matrix (committed numbers only; no re-run here) --------------
    matrix = baseline.get("matrix")
    if matrix is None:
        checks.skip("matrix.speedup", "no committed matrix section")
    elif matrix.get("cpu_count", 1) <= 1:
        checks.skip("matrix.speedup",
                    "committed run had cpu_count == 1 (pool overhead, "
                    "not parallelism)")
    else:
        checks.bound("matrix.speedup", matrix["speedup"], 1.0)
        checks.flag("matrix.summaries_identical",
                    matrix.get("summaries_identical", False))

    # ---- inject sweep (committed crash-safety record) -----------------
    sweep = baseline.get("inject_sweep")
    if sweep is None:
        checks.skip("inject_sweep.success_rate", "no committed section")
    else:
        checks.bound("inject_sweep.success_rate_pct",
                     sweep["recovery_success_rate_pct"], 100.0)

    print(f"bench-regression guard ({n_updates} updates vs committed "
          f"{baseline.get('config', {}).get('n_updates', '?')}):")
    print(checks.render())
    if checks.failures:
        print(f"\n{len(checks.failures)} band(s) violated: "
              f"{', '.join(checks.failures)}", file=sys.stderr)
        return 1
    print("\nall bands hold")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed report to compare against")
    parser.add_argument("--updates", type=int, default=5_000,
                        help="synthetic log size for the quick re-run")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    return run_guard(args.baseline, args.updates, args.seed)


if __name__ == "__main__":
    sys.exit(main())
