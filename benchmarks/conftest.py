"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper's
evaluation.  The expensive part — the 12-fault x 4-solution experiment
matrix — is computed once per pytest session and shared.  Two layers cut
that cost further:

* the session ``matrix`` fixture **pre-warms** every still-missing cell
  through :func:`repro.harness.matrix.run_matrix`'s process-pool
  fan-out, so all table/figure benches share one parallel sweep instead
  of filling the cache serially on first use;
* an optional **on-disk cache** (``results/matrix_cache.json``, keyed
  by ``fid:solution:seed`` plus a hash of ``src/repro``) lets repeated
  bench sessions skip recomputation entirely.  Pass ``--no-cache`` (or
  set ``REPRO_MATRIX_NO_CACHE=1``) to ignore and not write it.

Every bench prints its rows (mirroring the paper's layout) and also
appends them to ``results/evaluation.txt`` so the output survives
pytest's capturing.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from typing import Dict, Optional, Tuple

import pytest

sys.path.insert(0, os.path.dirname(__file__))  # noqa: E402

from repro.harness.experiment import ExperimentResult, run_experiment
from repro.harness.matrix import (
    CellSpec,
    result_from_summary,
    run_matrix,
    summarize_result,
)

FAULTS = [f"f{i}" for i in range(1, 13)]
SOLUTIONS = ("arthas", "arthas-rb", "pmcriu", "arckpt")

#: probabilistic pmCRIU cells (bench_table3 re-runs these across seeds);
#: pre-warmed together with the seed-0 matrix so one fan-out covers all
PROB_SEEDS = list(range(10))
PROB_FAULTS = ("f5", "f8")

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
CACHE_PATH = os.path.join(RESULTS_DIR, "matrix_cache.json")
SRC_ROOT = os.path.join(os.path.dirname(__file__), "..", "src", "repro")

_matrix_cache: Dict[Tuple[str, str, int], ExperimentResult] = {}
_disk_cache: Optional[Dict[str, dict]] = None
_disk_dirty = False
_cache_enabled = True
_code_version: Optional[str] = None


def pytest_addoption(parser):
    parser.addoption(
        "--no-cache", action="store_true", default=False,
        help="ignore (and do not write) results/matrix_cache.json",
    )


def pytest_configure(config):
    global _cache_enabled
    if config.getoption("--no-cache", default=False):
        _cache_enabled = False
    if os.environ.get("REPRO_MATRIX_NO_CACHE"):
        _cache_enabled = False


def pytest_sessionfinish(session, exitstatus):
    """Persist newly computed cells for the next bench session."""
    if not (_cache_enabled and _disk_dirty and _disk_cache is not None):
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {"code_version": _current_code_version(),
               "cells": _disk_cache}
    with open(CACHE_PATH, "w") as f:
        json.dump(payload, f, sort_keys=True)
        f.write("\n")


# ----------------------------------------------------------------------
# the session matrix cache (memory -> disk -> compute)
# ----------------------------------------------------------------------
def _current_code_version() -> str:
    """Hash of every ``src/repro`` source file — the cache key's epoch."""
    global _code_version
    if _code_version is None:
        digest = hashlib.sha256()
        paths = []
        for dirpath, _dirnames, filenames in os.walk(SRC_ROOT):
            for name in filenames:
                if name.endswith(".py"):
                    paths.append(os.path.join(dirpath, name))
        for path in sorted(paths):
            digest.update(os.path.relpath(path, SRC_ROOT).encode())
            with open(path, "rb") as f:
                digest.update(f.read())
        _code_version = digest.hexdigest()
    return _code_version


def _load_disk_cache() -> Dict[str, dict]:
    global _disk_cache
    if _disk_cache is None:
        _disk_cache = {}
        if _cache_enabled and os.path.exists(CACHE_PATH):
            try:
                with open(CACHE_PATH) as f:
                    payload = json.load(f)
                if payload.get("code_version") == _current_code_version():
                    _disk_cache = dict(payload.get("cells", {}))
            except (OSError, ValueError):
                pass  # unreadable cache: recompute
    return _disk_cache


def _cache_key(fid: str, solution: str, seed: int) -> str:
    return f"{fid}:{solution}:{seed}"


def _store(key: Tuple[str, str, int], summary: dict) -> None:
    global _disk_dirty
    _load_disk_cache()[_cache_key(*key)] = summary
    _disk_dirty = True


def matrix_cell(fid: str, solution: str, seed: int = 0) -> ExperimentResult:
    """One experiment cell, memoised for the whole session (and, unless
    ``--no-cache``, across sessions via ``results/matrix_cache.json``)."""
    key = (fid, solution, seed)
    cached = _matrix_cache.get(key)
    if cached is not None:
        return cached
    summary = _load_disk_cache().get(_cache_key(*key))
    if summary is not None:
        result = result_from_summary(summary)
    else:
        result = run_experiment(fid, solution, seed=seed)
        _store(key, summarize_result(result))
    _matrix_cache[key] = result
    return result


def _prewarm_matrix() -> None:
    """One process-pool fan-out over every cell the benches will need."""
    specs = [
        CellSpec(fid, sol, 0) for sol in SOLUTIONS for fid in FAULTS
    ] + [
        CellSpec(fid, "pmcriu", seed)
        for fid in PROB_FAULTS
        for seed in PROB_SEEDS
        if seed != 0
    ]
    disk = _load_disk_cache()
    missing = [
        spec for spec in specs
        if spec.key not in _matrix_cache
        and _cache_key(*spec.key) not in disk
    ]
    if not missing:
        return
    report = run_matrix(missing, jobs=None)
    for cell in report.cells:
        if cell.ok:
            _matrix_cache[cell.spec.key] = cell.result()
            _store(cell.spec.key, cell.summary)
        # error cells stay missing: matrix_cell recomputes them serially
        # on first use, surfacing the real exception to the bench


@pytest.fixture(scope="session")
def matrix():
    """The full 12x4 matrix at seed 0, pre-warmed by one parallel sweep."""
    _prewarm_matrix()
    return {
        (fid, sol): matrix_cell(fid, sol)
        for fid in FAULTS
        for sol in SOLUTIONS
    }


def emit(text: str) -> None:
    """Print a rendered table/figure and persist it to results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "evaluation.txt"), "a") as f:
        f.write(text + "\n\n")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "evaluation.txt")
    with open(path, "w") as f:
        f.write("Arthas reproduction - evaluation output\n\n")
    yield
