"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper's
evaluation.  The expensive part — the 12-fault x 4-solution experiment
matrix — is computed once per pytest session and shared; every bench
prints its rows (mirroring the paper's layout) and also appends them to
``results/evaluation.txt`` so the output survives pytest's capturing.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, Tuple

import pytest

sys.path.insert(0, os.path.dirname(__file__))  # noqa: E402

from repro.harness.experiment import ExperimentResult, run_experiment

FAULTS = [f"f{i}" for i in range(1, 13)]
SOLUTIONS = ("arthas", "arthas-rb", "pmcriu", "arckpt")

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

_matrix_cache: Dict[Tuple[str, str, int], ExperimentResult] = {}


def matrix_cell(fid: str, solution: str, seed: int = 0) -> ExperimentResult:
    """One experiment cell, memoised for the whole session."""
    key = (fid, solution, seed)
    if key not in _matrix_cache:
        _matrix_cache[key] = run_experiment(fid, solution, seed=seed)
    return _matrix_cache[key]


@pytest.fixture(scope="session")
def matrix():
    """The full 12x4 matrix at seed 0 (computed lazily, cached)."""
    return {
        (fid, sol): matrix_cell(fid, sol)
        for fid in FAULTS
        for sol in SOLUTIONS
    }


def emit(text: str) -> None:
    """Print a rendered table/figure and persist it to results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "evaluation.txt"), "a") as f:
        f.write(text + "\n\n")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "evaluation.txt")
    with open(path, "w") as f:
        f.write("Arthas reproduction - evaluation output\n\n")
    yield
