"""Table 9: static analysis, instrumentation and slicing time.

Expected shape (paper): the static analysis (pointer analysis + PDG)
dominates and runs offline in the reactor server; instrumentation is
cheap; slicing a fault instruction with the PDG in hand takes well under
a second — which is why mitigation latency excludes the analysis.
"""

import time

from conftest import emit

from repro.analysis import analyze_module
from repro.analysis.slicing import backward_slice
from repro.harness.report import render_table
from repro.instrument.passes import instrument_module
from repro.lang.compiler import compile_module
from repro.systems import ALL_ADAPTERS

SYSTEMS = ("memcached", "redis", "pelikan", "pmemkv", "cceh")


def _measure(system):
    cls = ALL_ADAPTERS[system]
    module = compile_module(f"{system}-t9", cls.SOURCE, structs=cls.STRUCTS)
    start = time.perf_counter()
    analysis = analyze_module(module)
    analysis_s = time.perf_counter() - start
    _guids, instrument_s = instrument_module(module, analysis.pm)
    # slice a representative fault instruction (the recovery function's
    # deepest load) with the PDG already available
    recover = module.functions[cls.RECOVER_FN]
    fault = [i for i in recover.instructions() if i.op == "load"][-1]
    start = time.perf_counter()
    backward_slice(analysis.pdg, fault.iid)
    slicing_s = time.perf_counter() - start
    return module, analysis_s, instrument_s, slicing_s


def test_table9_analysis_time(benchmark):
    benchmark.pedantic(lambda: _measure("cceh"), rounds=1, iterations=1)
    rows = []
    for system in SYSTEMS:
        module, analysis_s, instrument_s, slicing_s = _measure(system)
        rows.append([
            system,
            module.instr_count(),
            f"{analysis_s:.3f}",
            f"{instrument_s:.4f}",
            f"{slicing_s:.4f}",
        ])
    emit(render_table(
        "Table 9: time (seconds) for Arthas to analyze, instrument and "
        "slice the evaluated systems",
        ["system", "IR instrs", "static analysis", "instrumentation",
         "slicing"],
        rows,
        note="the static analysis runs offline in the reactor server; "
             "only slicing is on the mitigation path",
    ))
    for row in rows:
        assert float(row[4]) < float(row[2]) + 1.0  # slicing << analysis
        assert float(row[4]) < 1.0
