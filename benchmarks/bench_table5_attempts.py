"""Table 5: number of rollback attempts during mitigation.

Expected shape (paper): pmCRIU needs few attempts (coarse snapshots);
Arthas needs more (median ~8, fine-grained one-at-a-time reversions);
ArCkpt either recovers in a couple of attempts (immediate crashes) or
times out.
"""

from conftest import FAULTS, emit, matrix_cell

from repro.harness.metrics import median
from repro.harness.report import render_table


def test_table5_attempts(benchmark, matrix):
    benchmark.pedantic(lambda: matrix_cell("f11", "arthas"), rounds=1, iterations=1)
    rows = []
    per_solution = {}
    for solution, label in (
        ("pmcriu", "pmCRIU"),
        ("arckpt", "ArCkpt"),
        ("arthas", "Arthas"),
    ):
        cells = []
        recovered_attempts = []
        for fid in FAULTS:
            m = matrix_cell(fid, solution).mitigation
            if m is None:
                cells.append("n/a")
            elif m.recovered:
                cells.append(str(m.attempts))
                recovered_attempts.append(m.attempts)
            else:
                cells.append("T")  # timed out, like the paper's 'T'
        rows.append([label] + cells)
        per_solution[label] = recovered_attempts
    emit(render_table(
        "Table 5: attempts of rollback during mitigation",
        ["solution"] + FAULTS,
        rows,
        note="T = timed out before recovering",
    ))
    emit(f"median attempts (recovered cases): "
         f"Arthas {median(per_solution['Arthas'])}, "
         f"pmCRIU {median(per_solution['pmCRIU'])}")
    # pmCRIU's snapshot count bounds its attempts to a handful; Arthas is
    # multi-attempt but recovers every case.  (Our Arthas medians run
    # *below* the paper's 8 — the distance-ordered candidate policy finds
    # the root cause faster than their default ordering; see
    # EXPERIMENTS.md.)
    assert median(per_solution["pmCRIU"]) <= 5
    assert len(per_solution["Arthas"]) == len(FAULTS)
    arckpt_cells = rows[1][1:]
    assert "T" in arckpt_cells, "ArCkpt should time out on the deep faults"
