"""Figure 12 + Table 8: runtime overhead of Arthas on the five systems.

Measures real interpreter throughput (ops/second of wall-clock) for each
system under: vanilla, Arthas (checkpoint + tracing), checkpoint only,
instrumentation only, and pmCRIU (periodic pool snapshots).

Expected shape (paper): Arthas costs single-digit percent, most of it
from checkpointing; the tracing instrumentation is nearly free; pmCRIU's
periodic snapshots cost less than eager checkpointing.
"""

import time

from conftest import emit

from repro.baselines.pmcriu import PmCRIU
from repro.harness.report import render_table
from repro.systems import ALL_ADAPTERS
from repro.workloads.generators import Op, OpKind
from repro.workloads.ycsb import YCSBWorkload

SYSTEMS = ("memcached", "redis", "pelikan", "pmemkv", "cceh")

#: Redis/Memcached run the YCSB 50/50 mix; the others a custom
#: insert-heavy benchmark, as in the paper (Section 6.7)
YCSB_SYSTEMS = {"memcached", "redis"}
RUN_OPS = 1200
KEYSPACE = 192
SNAPSHOT_EVERY_OPS = 120  # one simulated minute of traffic


def _workload_ops(system):
    wl = YCSBWorkload(seed=11, keyspace=KEYSPACE,
                      read_ratio=0.5 if system in YCSB_SYSTEMS else 0.0)
    return list(wl.load_ops()), list(wl.run_ops(RUN_OPS))


def _throughput(system, tracing, checkpoint, snapshots=False):
    adapter_cls = ALL_ADAPTERS[system]
    adapter = adapter_cls(
        seed=0, with_tracing=tracing, with_checkpoint=checkpoint,
        pool_words=1 << 17,
    )
    adapter.start()
    load, run = _workload_ops(system)
    for op in load:
        adapter.insert(op.key, op.value)
    criu = PmCRIU(adapter.pool, adapter.allocator) if snapshots else None
    start = time.perf_counter()
    for i, op in enumerate(run):
        if criu is not None and i % SNAPSHOT_EVERY_OPS == 0:
            criu.maybe_snapshot(float(i))
        if op.kind is OpKind.GET:
            adapter.lookup(op.key)
        else:
            adapter.insert(op.key, op.value)
    elapsed = time.perf_counter() - start
    return len(run) / elapsed


def test_fig12_table8_overhead(benchmark):
    benchmark.pedantic(
        lambda: _throughput("pmemkv", False, False), rounds=1, iterations=1
    )
    fig_rows = []
    table_rows = []
    for system in SYSTEMS:
        vanilla = _throughput(system, tracing=False, checkpoint=False)
        arthas = _throughput(system, tracing=True, checkpoint=True)
        ckpt_only = _throughput(system, tracing=False, checkpoint=True)
        instr_only = _throughput(system, tracing=True, checkpoint=False)
        pmcriu = _throughput(system, tracing=False, checkpoint=False,
                             snapshots=True)
        fig_rows.append([
            system,
            f"{vanilla:.0f}",
            f"{arthas / vanilla:.3f}",
            f"{pmcriu / vanilla:.3f}",
        ])
        table_rows.append([
            system,
            f"{vanilla:.0f}",
            f"{ckpt_only:.0f}",
            f"{instr_only:.0f}",
            f"{arthas:.0f}",
        ])
    emit(render_table(
        "Figure 12: system throughput relative to vanilla "
        "(interpreter ops/s, wall clock)",
        ["system", "vanilla ops/s", "w/ Arthas (rel)", "w/ pmCRIU (rel)"],
        fig_rows,
        note="relative throughput close to 1.0 = low overhead",
    ))
    emit(render_table(
        "Table 8: throughput with checkpointing vs instrumentation alone",
        ["system", "vanilla", "w/ checkpoint", "w/ instrumentation",
         "w/ both (Arthas)"],
        table_rows,
    ))
    for row in fig_rows:
        rel_arthas = float(row[2])
        rel_pmcriu = float(row[3])
        assert rel_arthas > 0.35, f"{row[0]}: Arthas overhead implausibly high"
        # the paper's ordering: periodic coarse snapshots cost less at
        # runtime than eager fine-grained checkpointing + tracing.  (The
        # absolute gap is larger here because per-instruction Python
        # hooks are far more expensive than the paper's inlined C
        # tracing; see EXPERIMENTS.md.)
        assert rel_pmcriu > rel_arthas - 0.05, (
            f"{row[0]}: pmCRIU should not cost more than Arthas"
        )
