"""Figure 8: time to mitigate each failure (simulated seconds).

Expected shape (paper): Arthas takes longer per case than the baselines
(average ~100 s vs ~30 s) because it re-executes after every fine-grained
reversion, while pmCRIU restores coarse snapshots in a handful of tries.
"""

from conftest import FAULTS, emit, matrix_cell

from repro.harness.metrics import mean
from repro.harness.report import render_grouped_bars


def test_fig8_mitigation_time(benchmark, matrix):
    benchmark.pedantic(lambda: matrix_cell("f11", "arthas"), rounds=1, iterations=1)
    series = {}
    for solution, label in (
        ("arthas", "Arthas"),
        ("arckpt", "ArCkpt"),
        ("pmcriu", "pmCRIU"),
    ):
        values = {}
        for fid in FAULTS:
            m = matrix_cell(fid, solution).mitigation
            if m is not None and m.recovered:
                values[fid] = m.duration_seconds
        series[label] = values
    emit(render_grouped_bars(
        "Figure 8: time to mitigate the failures (simulated seconds, "
        "recovered cases only)",
        FAULTS,
        series,
        unit="s",
    ))
    avg_arthas = mean(list(series["Arthas"].values()))
    avg_pmcriu = mean(list(series["pmCRIU"].values()))
    emit(f"average mitigation time: Arthas {avg_arthas:.1f}s, "
         f"pmCRIU {avg_pmcriu:.1f}s")
    # the paper's shape: Arthas pays more time for fine-grained reversion
    assert avg_arthas > avg_pmcriu
