"""Table 2: the 12 reproduced persistent faults.

Lists the reproduction registry and times one representative end-to-end
fault trigger (f4's append overflow) as the benchmark unit.
"""

from conftest import emit

from repro.errors import Trap
from repro.faults.registry import ALL_SCENARIOS
from repro.harness.report import render_table
from repro.systems.memcached import MemcachedAdapter


def test_table2_fault_registry(benchmark):
    def trigger_f4():
        adapter = MemcachedAdapter()
        adapter.start()
        for k in range(30):
            adapter.insert(k, 900_000_000 + k)
        adapter.append(3, 257, 987_654_321)
        crashed = False
        try:
            for k in range(30):
                adapter.lookup(k)
        except Trap:
            crashed = True
        return crashed

    assert benchmark(trigger_f4)
    rows = [[s.fid, s.system, s.fault, s.consequence] for s in ALL_SCENARIOS]
    emit(render_table(
        "Table 2: persistent faults reproduced for evaluation",
        ["No.", "System", "Fault", "Consequence"],
        rows,
    ))
    assert len(rows) == 12
