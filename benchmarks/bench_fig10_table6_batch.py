"""Figure 10 + Table 6: batch vs one-by-one reversion.

Expected shape (paper, Section 6.5): batching (5 sequence numbers per
re-execution) needs fewer re-execution attempts and finishes faster, but
discards more data than reverting one checkpoint entry at a time.  Run
on key Memcached/Redis bugs with a reduced workload, as in the paper.
"""

from conftest import emit

from repro.harness.experiment import run_experiment
from repro.harness.metrics import mean
from repro.harness.report import render_table

#: the paper uses "several key bugs from Memcached and Redis"
CASES = ("f1", "f2", "f6", "f7")
REDUCED_PRE_OPS = 120
REDUCED_POST_OPS = 80


def _run(fid, batch_size):
    return run_experiment(
        fid,
        "arthas",
        seed=0,
        batch_size=batch_size,
        pre_ops=REDUCED_PRE_OPS,
        post_ops=REDUCED_POST_OPS,
        consistency_probe=False,
    ).mitigation


def test_fig10_table6_batch_vs_one_by_one(benchmark):
    benchmark.pedantic(lambda: _run("f7", 1), rounds=1, iterations=1)
    single = {fid: _run(fid, 1) for fid in CASES}
    batch = {fid: _run(fid, 5) for fid in CASES}

    time_rows = []
    item_rows = []
    for fid in CASES:
        time_rows.append([
            fid,
            f"{batch[fid].duration_seconds:.1f}",
            f"{single[fid].duration_seconds:.1f}",
            batch[fid].attempts,
            single[fid].attempts,
        ])
        item_rows.append([
            fid,
            batch[fid].reverted_updates,
            single[fid].reverted_updates,
        ])
    emit(render_table(
        "Figure 10: mitigation time, batch vs one-by-one reversion "
        "(reduced workload)",
        ["fault", "batch time (s)", "single time (s)",
         "batch attempts", "single attempts"],
        time_rows,
    ))
    emit(render_table(
        "Table 6: discarded checkpoint updates, batch vs one-by-one",
        ["fault", "batch", "one-by-one"],
        item_rows,
    ))
    assert all(m.recovered for m in single.values())
    assert all(m.recovered for m in batch.values())
    # batching trades data loss for fewer attempts
    assert mean([batch[f].attempts for f in CASES]) <= mean(
        [single[f].attempts for f in CASES]
    )
    assert sum(batch[f].reverted_updates for f in CASES) >= sum(
        single[f].reverted_updates for f in CASES
    )
