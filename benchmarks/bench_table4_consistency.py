"""Table 4: is the recovered system semantically consistent?

Expected shape (paper): the conservative rollback mode is consistent in
every recovered case; the purge mode is consistent in most but can leave
subtle semantic inconsistencies (2/12 cases in the paper); baselines are
consistent whenever they recover at all (they restore full images).
"""

from conftest import FAULTS, emit, matrix_cell

from repro.harness.report import render_table


def _cell(fid, solution):
    result = matrix_cell(fid, solution)
    m = result.mitigation
    if m is None or not m.recovered:
        return "n/a"
    return "Y" if m.consistent else "N"


def test_table4_consistency(benchmark, matrix):
    benchmark.pedantic(lambda: matrix_cell("f11", "arthas"), rounds=1, iterations=1)
    rows = []
    for solution, label in (
        ("pmcriu", "pmCRIU"),
        ("arckpt", "ArCkpt"),
        ("arthas", "Arthas (pg)"),
        ("arthas-rb", "Arthas (rb)"),
    ):
        rows.append([label] + [_cell(fid, solution) for fid in FAULTS])
    emit(render_table(
        "Table 4: semantic consistency of the recovered system",
        ["solution"] + FAULTS,
        rows,
        note="n/a = not recovered (consistency not applicable)",
    ))
    rb_row = rows[3][1:]
    assert all(c in ("Y", "n/a") for c in rb_row), "rollback mode is conservative"
    pg_row = rows[2][1:]
    inconsistent = sum(1 for c in pg_row if c == "N")
    assert inconsistent <= 3, "purge inconsistencies must stay rare"
