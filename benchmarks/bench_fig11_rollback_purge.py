"""Figure 11: discarded changes under rollback vs purging mode.

Expected shape (paper): rollback discards several times more data than
purge (16.9% vs 3.6% average) because it reverts every update newer than
the chosen point, related or not.
"""

from conftest import FAULTS, emit, matrix_cell

from repro.harness.metrics import mean
from repro.harness.report import render_grouped_bars


def test_fig11_rollback_vs_purge(benchmark, matrix):
    benchmark.pedantic(lambda: matrix_cell("f11", "arthas"), rounds=1, iterations=1)
    series = {"Purge": {}, "Rollback": {}}
    for fid in FAULTS:
        pg = matrix_cell(fid, "arthas").mitigation
        rb = matrix_cell(fid, "arthas-rb").mitigation
        if pg is not None and pg.recovered:
            series["Purge"][fid] = pg.discarded_pct
        if rb is not None and rb.recovered:
            series["Rollback"][fid] = rb.discarded_pct
    emit(render_grouped_bars(
        "Figure 11: discarded changes with rollback and purging modes",
        FAULTS,
        series,
        unit="%",
    ))
    avg_pg = mean(list(series["Purge"].values()))
    avg_rb = mean(list(series["Rollback"].values()))
    emit(f"average data loss: purge {avg_pg:.2f}%, rollback {avg_rb:.2f}%")
    assert avg_rb > avg_pg, "rollback must discard more than purge"
