"""Distributed hard-fault recovery (the paper's Section 7 sketch).

Three PM nodes behind a consistent-hash ring serve a keyspace with
replication factor 2; clients stamp requests with vector clocks.  Node
0 gets wedged by the memcached refcount bug (f1) and the shard
supervisor runs the promotion protocol:

1. *promote* — node 0 is marked down; its replicas take over the arc,
2. *serve* — a window of reads and writes flows mid-heal: healthy
   shards answer as usual, writes aimed at the sick arc fail over,
3. *mitigate* — the local Arthas reactor discards the poisoned state
   (and, were every rung to fail, the *rebuild* phase would abandon
   the pool and re-replicate it from the surviving replicas),
4. *cascade* — requests causally after a discarded one are reverted
   on whatever node applied them, until the cut is causally
   consistent,
5. *resync/handoff* — the healed node replays the oplog tail it
   missed and rejoins as a replica (demoted, never re-promoted).

Run:  python examples/distributed_recovery.py
"""

from repro.detector.monitor import Detector
from repro.distributed import Cluster, ClusterClient
from repro.distributed.shardmgr import ShardManager
from repro.faults.registry import scenario_by_id
from repro.harness.experiment import ExperimentContext


def main():
    scenario = scenario_by_id("f1")
    cluster = Cluster(n_nodes=3, n_clients=2, replication=2)
    alice = ClusterClient(cluster, 0)
    bob = ClusterClient(cluster, 1)

    for key in range(30):
        alice.insert(key, 500 + key)
    print(f"3 nodes (replication 2), 30 keys loaded; "
          f"lookup(7) = {alice.lookup(7)}")

    # wedge node 0: the f1 refcount overflow poisons one of its buckets
    node0 = cluster.nodes[0]
    ctx = ExperimentContext(node0, scenario, seed=0)
    ctx.oracle = cluster.oracles[0]
    scenario.trigger(ctx)

    detector = Detector()
    outcome = detector.observe(node0.machine, lambda: scenario.manifest(ctx))
    assert not outcome.ok
    print(f"node 0 failure: {outcome.fault.kind} in {outcome.fault.location}")

    # keys whose pre-fault primary is node 0: written during the heal,
    # they must fail over to replicas and land back on node 0 at resync
    arc_keys = cluster.keys_for_node(0, 3, start=1000)
    window = {"reads": [], "writes": []}

    def serve_between():
        assert cluster.is_down(0)
        for key in range(6):          # healthy-shard reads keep flowing
            window["reads"].append(bob.lookup(key))
        for key in arc_keys:          # the sick arc accepts writes
            rec = bob.insert(key, 9000 + key)
            assert rec.node != 0
            window["writes"].append(rec)

    mgr = ShardManager(cluster, solution="arthas", seed=0)
    mgr.note_verdict(0)
    report = mgr.heal(
        0, ctx, scenario, outcome, detector, serve_between=serve_between
    )
    print(f"heal: recovered={report.recovered} via {report.recovered_by}, "
          f"phases={report.phases}")
    print(f"served mid-heal: {len(window['reads'])} reads, "
          f"{len(window['writes'])} failed-over writes")
    print(f"resync replayed {report.resync_replayed} missed op(s); "
          f"node 0 rejoined demoted={report.demoted}")

    print("post-recovery state:")
    for op in window["writes"]:
        if 0 in op.spans:
            print(f"  window write key {op.key} -> node 0 now serves "
                  f"{cluster.nodes[0].lookup(op.key)}")
    survivors = sum(1 for k in range(30) if alice.lookup(k) == 500 + k)
    print(f"  {survivors}/30 pre-fault keys intact")
    for row in mgr.health_table():
        print(f"  shard {row['node']}: {row['status']} "
              f"(score {row['score']})")
    assert report.recovered and report.demoted


if __name__ == "__main__":
    main()
