"""Distributed hard-fault recovery (the paper's Section 7 sketch).

Three PM nodes serve a keyspace; clients stamp requests with vector
clocks.  Node 0 gets wedged by the memcached refcount bug (f1).  The
coordinator:

1. runs the local Arthas reactor on node 0 (which discards the poisoned
   insert),
2. maps the reverted checkpoint sequence numbers back to the client
   request they belonged to,
3. cascades: every request *causally after* the discarded one — the
   client had observed the poisoned state before issuing it — is
   reverted on whatever node it executed, until the cut is causally
   consistent.

Run:  python examples/distributed_recovery.py
"""

from repro.detector.monitor import Detector
from repro.distributed import Cluster, ClusterClient, DistributedReactor


def main():
    cluster = Cluster(n_nodes=3, n_clients=2)
    alice = ClusterClient(cluster, 0)
    bob = ClusterClient(cluster, 1)

    for key in range(30):
        alice.insert(key, 500 + key)
    print(f"3 nodes, 30 keys loaded; lookup(7) = {alice.lookup(7)}")

    # wedge node 0 with the f1 refcount bug
    node0 = cluster.nodes[0]
    victim = 0
    while node0.call("mc_refcount", node0.root, victim) != 0:
        node0.lookup(victim)
    node0.reap()
    poison_key = 3 * (1 << 20)  # routes to node 0, same bucket as victim
    poison_op = bob.insert(poison_key, 999)

    # bob's next requests are causally after the poisoned one
    dep1 = bob.insert(poison_key + 1, 1000)   # lands on node 1
    dep2 = bob.insert(poison_key + 2, 1001)   # lands on node 2
    print(f"poisoned insert op#{poison_op.op_id} on node 0; "
          f"dependents op#{dep1.op_id} (node {dep1.node}), "
          f"op#{dep2.op_id} (node {dep2.node})")

    # the failure manifests on node 0 and survives restarts
    detector = Detector()
    probe = 5 * (1 << 20)
    outcome = detector.observe(node0.machine, lambda: node0.lookup(probe))
    print(f"node 0 failure: {outcome.fault.kind} in {outcome.fault.location}")

    reactor = DistributedReactor(cluster)

    def verify():
        assert node0.lookup(probe) == -1

    report = reactor.mitigate(0, outcome.fault.iid, verify)
    print(f"local recovery: {report.recovered} "
          f"({report.local_attempts} attempts); discarded "
          f"{[op.op_id for op in report.discarded_ops]} on node 0")
    print(f"cascade ({report.rounds} round(s)): reverted "
          f"{[(op.op_id, op.node) for op in report.cascaded_ops]}")

    print("post-recovery state:")
    print(f"  node 0 GET({probe}) -> {node0.lookup(probe)} (was hanging)")
    print(f"  dependents gone: "
          f"{cluster.nodes[dep1.node].lookup(dep1.key)}, "
          f"{cluster.nodes[dep2.node].lookup(dep2.key)}")
    survivors = sum(1 for k in range(1, 30) if alice.lookup(k) == 500 + k)
    print(f"  {survivors}/29 independent keys intact")
    assert report.recovered


if __name__ == "__main__":
    main()
