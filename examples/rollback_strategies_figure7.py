"""The paper's Figure 6/7: three rollback strategies on one timeline.

Reconstructs the abstract example of Section 4.4: fifteen writes t1..t15,
a dependency chain  t5 -> t9 -> t10 -> t15  where t5 is the root-cause
*persistent* bad update, t9 is volatile, and the crash manifests at t15.
Independent persistent updates (t3, t4, t11, t13, t14, ...) carry data
that a good recovery should preserve.

* **time-based rollback** (pmCRIU): periodic snapshots ckpt1..ckpt4;
  restoring walks back snapshot by snapshot until one predates t5 —
  losing every independent update after it.
* **dependency-based rollback** (Arthas rb): follows the dependency chain
  to the cut and reverts everything newer than it.
* **dependency-based purge** (Arthas pg): reverts only the dependent
  updates; independent t11/t13/t14 survive.

Run:  python examples/rollback_strategies_figure7.py
"""

from repro.checkpoint.log import CheckpointLog
from repro.detector.monitor import RunOutcome
from repro.harness.report import render_table
from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PMPool
from repro.pmem.snapshot import restore_snapshot, take_snapshot
from repro.reactor.plan import Candidate, ReversionPlan
from repro.reactor.revert import Reverter

#: the persistent writes of Figure 6, in timeline order: (name, value)
PERSISTENT_WRITES = [
    ("t1", 11), ("t3", 13), ("t4", 14),
    ("t5", 666),   # the root-cause bad persistent update
    ("t7", 17), ("t8", 18),
    ("t10", 667),  # dependent on t5 (via the volatile t9)
    ("t11", 21), ("t12", 22), ("t13", 23), ("t14", 24),
]
DEPENDENT = {"t5", "t10"}  # the chain that must be reverted


def build_timeline():
    """Lay the timeline into a pool + checkpoint log, with snapshots."""
    pool = PMPool(1024)
    allocator = PMAllocator(pool)
    log = CheckpointLog()
    addr_of = {}
    snapshots = []
    for i, (name, value) in enumerate(PERSISTENT_WRITES):
        a = allocator.zalloc(1)
        addr_of[name] = a
        # each location first holds a good initial value (the state the
        # reactor can revert to), then the timeline's write lands on it
        pool.write(a, 1000 + i)
        pool.persist(a, 1)
        log.record_update(a, 1, [1000 + i])
        pool.write(a, value)
        pool.persist(a, 1)
        log.record_update(a, 1, [value])
        if name in ("t3", "t8", "t10", "t14"):  # ckpt1..ckpt4
            snapshots.append(take_snapshot(pool, allocator, taken_at=i,
                                           label=f"ckpt{len(snapshots)+1}"))
    return pool, allocator, log, addr_of, snapshots


def healthy(pool, addr_of):
    """The system is operational iff the bad chain values are gone."""
    return (pool.durable_read(addr_of["t5"]) != 666
            and pool.durable_read(addr_of["t10"]) != 667)


def surviving_independents(pool, addr_of):
    return sum(
        1 for name, value in PERSISTENT_WRITES
        if name not in DEPENDENT and pool.durable_read(addr_of[name]) == value
    )


def run_time_based():
    pool, allocator, log, addr_of, snapshots = build_timeline()
    attempts = 0
    for snap in reversed(snapshots + []):
        attempts += 1
        restore_snapshot(pool, snap, allocator)
        if healthy(pool, addr_of):
            break
    else:
        attempts += 1
        restore_snapshot(
            pool,
            take_snapshot(PMPool(1024), None, label="initial"),
        )
    return attempts, surviving_independents(pool, addr_of)


def _plan(log, addr_of, names):
    cands = []
    for name in names:
        entry = log.entries[addr_of[name]]
        cands.append(Candidate(seq=entry.latest().seq, addr=entry.address,
                               guid=name, slice_iid=-1))
    return ReversionPlan(fault_iid=0, candidates=cands)


def run_dependency(mode):
    pool, allocator, log, addr_of, _ = build_timeline()

    def reexec():
        return RunOutcome(ok=healthy(pool, addr_of))

    reverter = Reverter(log, pool, allocator, reexec=reexec)
    plan = _plan(log, addr_of, ["t10", "t5"])  # newest dependent first
    if mode == "rollback":
        result = reverter.mitigate_rollback(plan)
    else:
        result = reverter.mitigate_purge(plan)
    assert result.recovered
    return result.attempts, surviving_independents(pool, addr_of)


def main():
    total_independent = len(PERSISTENT_WRITES) - len(DEPENDENT)
    rows = []
    for label, runner in (
        ("time-based (Fig. 7a)", run_time_based),
        ("dependency rollback (Fig. 7b)", lambda: run_dependency("rollback")),
        ("dependency purge (Fig. 7c)", lambda: run_dependency("purge")),
    ):
        attempts, survivors = runner()
        rows.append([label, attempts, f"{survivors}/{total_independent}"])
    print(render_table(
        "Figure 7: three rollback strategies on the Figure 6 timeline",
        ["strategy", "attempts", "independent updates preserved"],
        rows,
        note="the bad chain is t5 -> t10; everything else is innocent",
    ))
    assert rows[2][2] == f"{total_independent}/{total_independent}", \
        "purge must preserve every independent update"


if __name__ == "__main__":
    main()
