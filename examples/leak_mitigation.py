"""Persistent-memory-leak mitigation (paper Section 4.7, faults f8/f12).

PMEMKV's lazy-free bug: deletes unlink entries from the persistent
hashtable immediately and queue the blocks on a *volatile* list that a
background thread frees later.  Crash before the thread runs and the
blocks are allocated forever — unreachable from the root, so no restart
or traversal ever reclaims them.

The reactor's leak mitigation needs no slicing: the checkpoint log knows
every allocation and free, and the instrumented recovery function touches
every *reachable* object.  Allocated, never-freed, never-touched blocks
are the leak; Arthas reports them and frees them after confirmation —
discarding zero good items.

Run:  python examples/leak_mitigation.py
"""

from repro.detector.monitor import LeakMonitor
from repro.reactor.leakfix import find_leaked_objects, mitigate_leak
from repro.systems.pmemkv import PmemkvAdapter


def main():
    kv = PmemkvAdapter()
    kv.start()

    for key in range(200):
        kv.insert(key, 7000 + key)
    print(f"inserted {kv.count_items()} entries, "
          f"PM usage {kv.allocator.used_words()} words")

    # normal operation: deletes enqueue, the background thread drains
    for key in range(40):
        kv.delete(key)
    freed = kv.drain()
    print(f"deleted 40 entries; background thread freed {freed} blocks")

    # the bug: a burst of deletes, then a crash before the drain
    for key in range(40, 160):
        kv.delete(key)
    print("crash before the asynchronous free thread runs...")
    kv.restart()

    monitor = LeakMonitor(kv.allocator, kv.expected_item_words,
                          threshold_ratio=1.3)
    violation = monitor.check()
    print(f"leak monitor: {violation}")
    assert violation is not None

    # recovery touches every reachable object (traced); diff against the log
    recovery_addresses = kv.recover()
    leaked = find_leaked_objects(
        kv.ckpt.log, kv.allocator, recovery_addresses, protect={kv.root}
    )
    print(f"suspected leaked blocks: {len(leaked)} "
          f"({sum(leaked.values())} words)")

    freed_words = mitigate_leak(kv.allocator, leaked, confirm=True)
    print(f"operator confirmed; freed {freed_words} words")
    print(f"leak monitor after mitigation: {monitor.check()}")

    survivors = sum(1 for k in range(160, 200) if kv.lookup(k) == 7000 + k)
    print(f"{survivors}/40 live entries intact — zero good items discarded")
    assert monitor.check() is None and survivors == 40


if __name__ == "__main__":
    main()
