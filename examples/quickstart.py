"""Quickstart: write a PM program, break it, let Arthas fix it.

This walks the whole toolchain end to end on a 60-line PMLang program:

1. write a persistent key-value store in PMLang and compile it,
2. analyze it (points-to, PM classification, PDG) and instrument tracing,
3. run it with checkpointing attached,
4. persist a *bad* value (a logic bug corrupts a chain pointer),
5. detect the crash, slice the fault instruction, and revert exactly the
   bad update — the store works again with all other data intact.

Run:  python examples/quickstart.py
"""

from repro.analysis import analyze_module
from repro.checkpoint.manager import CheckpointManager
from repro.detector.monitor import Detector
from repro.instrument.passes import instrument_module
from repro.instrument.tracer import PMTrace
from repro.lang.compiler import compile_module
from repro.lang.interp import Machine
from repro.reactor.plan import compute_plan
from repro.reactor.revert import Reverter

SOURCE = '''
def kv_init():
    root = get_root()
    if root == 0:
        root = pm_alloc(sizeof("kvroot"))
        root.kv_head = 0
        root.kv_count = 0
        persist(root, sizeof("kvroot"))
        set_root(root)
    return root


def kv_put(root, key, value):
    node = pm_alloc(sizeof("kvnode"))
    node.kn_key = key
    node.kn_value = value
    node.kn_next = root.kv_head
    persist(node, sizeof("kvnode"))
    root.kv_head = node
    root.kv_count = root.kv_count + 1
    persist(addr(root.kv_head), 1)
    persist(addr(root.kv_count), 1)
    return node


def kv_get(root, key):
    node = root.kv_head
    while node != 0:
        if node.kn_key == key:
            return node.kn_value
        node = node.kn_next
    return -1


def kv_corrupting_update(root, key, bogus):
    node = root.kv_head
    while node != 0:
        if node.kn_key == key:
            node.kn_next = bogus
            persist(addr(node.kn_next), 1)
            return 1
        node = node.kn_next
    return 0


def __driver__():
    root = kv_init()
    kv_put(root, 1, 2)
    kv_get(root, 1)
    kv_corrupting_update(root, 1, 0)
    return 0
'''

STRUCTS = {
    "kvroot": ["kv_head", "kv_count"],
    "kvnode": ["kn_key", "kn_value", "kn_next"],
}


def main():
    # 1. compile & 2. analyze + instrument (what the Arthas analyzer does)
    module = compile_module("quickstart", SOURCE, structs=STRUCTS)
    analysis = analyze_module(module)
    guid_map, _ = instrument_module(module, analysis.pm)
    print(f"compiled {module.instr_count()} IR instructions; "
          f"{len(analysis.pm.pm_instr_iids)} touch persistent memory; "
          f"PDG has {analysis.pdg.edge_count()} edges")

    # 3. run with the checkpoint library and tracing attached
    machine = Machine(module)
    manager = CheckpointManager(machine.pool, machine.allocator, machine.txman)
    manager.attach()
    trace = PMTrace()
    machine.tracer = trace.record

    root = machine.call("kv_init")
    for k in range(10):
        machine.call("kv_put", root, k, 100 + k)
    print("stored 10 items; kv_get(7) =", machine.call("kv_get", root, 7))

    # 4. a logic bug persists a wild chain pointer (a Type-I hard fault)
    machine.call("kv_corrupting_update", root, 5, 999_999_999)

    # 5. the crash manifests, survives a restart, and gets mitigated
    detector = Detector()
    outcome = detector.observe(machine, lambda: machine.call("kv_get", root, 2))
    print(f"failure: {outcome.fault.kind} at {outcome.fault.location}")

    machine.crash()  # restart: the bad pointer is persistent
    recurrence = detector.observe(machine, lambda: machine.call("kv_get", root, 2))
    print("recurs after restart:",
          detector.is_potential_hard_failure(recurrence.signature))

    plan = compute_plan(analysis, guid_map, trace, manager.log,
                        outcome.fault.iid)
    print(f"reversion plan: {len(plan.candidates)} candidate updates "
          f"(slice: {plan.slice_size} nodes, {plan.pm_slice_size} PM nodes)")

    def reexec():
        machine.crash()
        return detector.observe(
            machine, lambda: machine.call("kv_get", root, 2)
        )

    reverter = Reverter(manager.log, machine.pool, machine.allocator,
                        reexec=reexec)
    result = reverter.mitigate_purge(plan)
    print(f"recovered: {result.recovered} after {result.attempts} attempt(s), "
          f"discarding {result.discarded_updates} of "
          f"{manager.log.total_updates} checkpointed updates")

    survivors = sum(
        1 for k in range(10) if machine.call("kv_get", root, k) == 100 + k
    )
    print(f"{survivors}/10 items intact after recovery")
    assert result.recovered and survivors >= 9


if __name__ == "__main__":
    main()
