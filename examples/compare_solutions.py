"""Compare Arthas against checkpoint-rollback baselines on one hard fault.

Runs the paper's end-to-end methodology (Section 6.1) for Redis's
listpack-overflow segfault (f6) under all four solutions — Arthas purge,
Arthas rollback, pmCRIU and ArCkpt — and prints the trade-offs the
evaluation is about: who recovers, in how many attempts, and how much
data each discards to get there.

Run:  python examples/compare_solutions.py
"""

from repro.harness.experiment import SOLUTIONS, run_experiment
from repro.harness.report import render_table

FAULT = "f6"


def main():
    rows = []
    for solution in SOLUTIONS:
        result = run_experiment(FAULT, solution, seed=0)
        m = result.mitigation
        rows.append([
            solution,
            "Y" if m.recovered else "N",
            m.attempts,
            f"{m.duration_seconds:.0f}s",
            f"{m.discarded_pct:.2f}%",
            {True: "Y", False: "N", None: "n/a"}[m.consistent],
        ])
    print(render_table(
        f"{FAULT} (Redis listpack buffer overflow) under each solution",
        ["solution", "recovered", "attempts", "time", "discarded",
         "consistent"],
        rows,
        note="time is simulated (each re-execution costs 3-5 s)",
    ))
    by_solution = {r[0]: r for r in rows}
    assert by_solution["arthas"][1] == "Y"
    assert by_solution["arckpt"][1] == "N", "time-ordered reversion times out"
    arthas_loss = float(by_solution["arthas"][4].rstrip("%"))
    pmcriu_loss = float(by_solution["pmcriu"][4].rstrip("%"))
    print(f"\nArthas discarded {pmcriu_loss / max(arthas_loss, 1e-9):.0f}x "
          f"less data than pmCRIU on this fault")


if __name__ == "__main__":
    main()
