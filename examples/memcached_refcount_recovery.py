"""The paper's artifact demo: Memcached's refcount-overflow hard fault.

Reproduces the walkthrough of the paper's artifact appendix (bug f1,
Memcached issue #271 "gets a dead loop in func assoc_find"):

1. start a buggy (instrumented) Memcached and insert a workload,
2. trigger the bug: GETs wrap an item's 8-bit refcount to 0, the reaper
   frees the still-linked item, and a re-insert reclaims the block so the
   hash chain points at itself,
3. a GET walks the chain forever; restarting does not help — the chain
   is persistent (a hard fault),
4. invoke the Arthas reactor: it slices the hang, maps the slice through
   the PM-address trace onto the checkpoint log, and reverts the one
   poisoned insert, unwedging the server.

Run:  python examples/memcached_refcount_recovery.py
"""

from repro.detector.monitor import Detector
from repro.harness.simclock import ReexecDelay, SimClock
from repro.reactor.revert import Reverter
from repro.reactor.server import ReactorClient, ReactorServer
from repro.systems.memcached import MemcachedAdapter


def main():
    # step 1: a buggy Memcached with Arthas attached (checkpoint + trace)
    mc = MemcachedAdapter()
    mc.start()
    for key in range(60):
        mc.insert(key, 900_000_000 + key)
    print(f"inserted {mc.count_items()} items; GET(7) -> {mc.lookup(7)}")

    # step 2: trigger the refcount overflow
    victim = 5
    while mc.call("mc_refcount", mc.root, victim) != 0:
        mc.lookup(victim)  # no overflow check: the 8-bit counter wraps
    print(f"item {victim}'s refcount wrapped to 0")
    mc.reap()  # frees refcount-0 items, assuming they were unlinked (bug)
    poison = victim + (1 << 20)
    mc.insert(poison, 4242)  # reclaims the freed block: chain self-loop
    print(f"re-inserted key {poison} into the same bucket")

    # step 3: the failure — and its recurrence across a restart
    detector = Detector()
    probe = victim + (1 << 21)  # an absent key in the poisoned bucket
    outcome = detector.observe(mc.machine, lambda: mc.lookup(probe))
    print(f"GET({probe}) -> {outcome.fault.kind}: {outcome.fault.message[:60]}")
    mc.restart()
    confirm = detector.observe(
        mc.machine, lambda: (mc.recover(), mc.lookup(probe))
    )
    print("hard fault confirmed (recurs across restart):",
          detector.is_potential_hard_failure(confirm.signature))

    # step 4: the reactor server already has the PDG; request mitigation
    server = ReactorServer(mc.module, analysis=mc.analysis)
    client = ReactorClient(server)
    plan = client.request_mitigation_plan(
        mc.guid_map, mc.trace, mc.ckpt.log, outcome.fault.iid
    )
    print(f"reversion plan: {len(plan.candidates)} candidates "
          f"(slicing took {plan.slicing_seconds * 1000:.1f} ms)")

    clock = SimClock()

    def reexec():
        mc.restart()
        return detector.observe(
            mc.machine,
            lambda: (mc.recover(), mc.lookup(probe)),
        )

    reverter = Reverter(mc.ckpt.log, mc.pool, mc.allocator, reexec=reexec,
                        clock=clock, reexec_delay=ReexecDelay(seed=1))
    result = reverter.mitigate_purge(plan)
    print(f"done with binary reversion {int(result.recovered)}")
    print(f"total reverted items is {result.discarded_updates} "
          f"(of {mc.ckpt.log.total_updates} checkpointed updates, "
          f"{result.attempts} attempts, "
          f"{clock.now:.1f} simulated seconds)")

    survivors = sum(1 for k in range(60)
                    if k != victim and mc.lookup(k) == 900_000_000 + k)
    print(f"Recovery finished: {survivors}/59 untouched items intact, "
          f"violations: {mc.consistency_violations()}")
    assert result.recovered


if __name__ == "__main__":
    main()
