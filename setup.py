"""Legacy setup shim.

The evaluation environment is offline and lacks the ``wheel`` package, so
PEP 517 editable installs fail; ``pip install -e . --no-build-isolation``
falls back to this file via ``--no-use-pep517`` or ``setup.py develop``.
"""

from setuptools import setup

setup()
